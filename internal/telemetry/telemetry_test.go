package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNopZeroAlloc pins the subsystem's core promise: the disabled
// recorder allocates nothing per event, so instrumentation is free on the
// GA hot loop when telemetry is off.
func TestNopZeroAlloc(t *testing.T) {
	var rec Recorder = Nop
	n := testing.AllocsPerRun(200, func() {
		rec.RecordGeneration(GenerationRecord{Generation: 1, BestValue: 2, MeanFitness: 3})
		rec.RecordEvaluation(EvaluationRecord{Generation: 1, Feasible: true, Fitness: 4})
		rec.RecordHint(HintRecord{Generation: 1, Gene: 2, Mechanism: HintValueBias, Guided: true})
		rec.RecordCache(CacheRecord{Event: CacheHit, Shard: 3})
		rec.RecordPool(PoolRecord{Event: PoolTask, Worker: 1})
		if rec.Enabled() {
			t.Fatal("Nop reports enabled")
		}
	})
	if n != 0 {
		t.Errorf("Nop recorder allocates %v per event batch, want 0", n)
	}
}

func TestOrNop(t *testing.T) {
	if OrNop(nil) != Nop {
		t.Error("OrNop(nil) != Nop")
	}
	c := NewCollector(nil)
	if OrNop(c) != Recorder(c) {
		t.Error("OrNop did not pass through a real recorder")
	}
}

func TestMulti(t *testing.T) {
	if Multi() != Nop {
		t.Error("empty Multi != Nop")
	}
	if Multi(nil, Nop) != Nop {
		t.Error("Multi of nil and Nop != Nop")
	}
	c := NewCollector(nil)
	if Multi(nil, c, Nop) != Recorder(c) {
		t.Error("single-survivor Multi should unwrap")
	}
	c2 := NewCollector(nil)
	m := Multi(c, c2)
	if !m.Enabled() {
		t.Error("Multi of live recorders reports disabled")
	}
	m.RecordCache(CacheRecord{Event: CacheMiss})
	if c.cacheMisses.Value() != 1 || c2.cacheMisses.Value() != 1 {
		t.Error("Multi did not fan the event out to both recorders")
	}
}

func TestRegistryCountersGaugesHistograms(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if reg.Counter("c") != c {
		t.Error("re-registering a counter returned a new instance")
	}

	g := reg.Gauge("g")
	g.Set(2.5)
	g.Add(1.5)
	if g.Value() != 4 {
		t.Errorf("gauge = %v, want 4", g.Value())
	}
	g.Max(3) // lower: no change
	if g.Value() != 4 {
		t.Errorf("Max lowered the gauge to %v", g.Value())
	}
	g.Max(7)
	if g.Value() != 7 {
		t.Errorf("Max did not raise the gauge: %v", g.Value())
	}

	h := reg.Histogram("h", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 5, 50, 5000} {
		h.Observe(v)
	}
	s := reg.Snapshot()
	hs := s.Histograms["h"]
	wantCounts := []int64{1, 2, 1, 1}
	if len(hs.Counts) != len(wantCounts) {
		t.Fatalf("histogram has %d buckets, want %d", len(hs.Counts), len(wantCounts))
	}
	for i, want := range wantCounts {
		if hs.Counts[i] != want {
			t.Errorf("bucket %d = %d, want %d", i, hs.Counts[i], want)
		}
	}
	if hs.Count != 5 || hs.Sum != 5060.5 {
		t.Errorf("count/sum = %d/%v, want 5/5060.5", hs.Count, hs.Sum)
	}
	if s.Counters["c"] != 5 || s.Gauges["g"] != 7 {
		t.Errorf("snapshot counters/gauges wrong: %+v", s)
	}
}

// TestSnapshotJSONSafe ensures a snapshot with non-finite gauges still
// marshals - the expvar endpoint depends on it.
func TestSnapshotJSONSafe(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("bad").Set(math.Inf(-1))
	reg.Gauge("nan").Set(math.NaN())
	reg.Gauge("ok").Set(1)
	s := reg.Snapshot()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("snapshot does not marshal: %v", err)
	}
	if _, bad := s.Gauges["bad"]; bad {
		t.Error("non-finite gauge leaked into snapshot")
	}
	if !strings.Contains(string(data), `"ok":1`) {
		t.Errorf("finite gauge missing from %s", data)
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				reg.Counter("n").Inc()
				reg.Gauge("g").Add(1)
				reg.Histogram("h", []float64{10, 100}).Observe(float64(i))
			}
		}()
	}
	wg.Wait()
	s := reg.Snapshot()
	if s.Counters["n"] != 8000 {
		t.Errorf("counter = %d, want 8000", s.Counters["n"])
	}
	if s.Gauges["g"] != 8000 {
		t.Errorf("gauge = %v, want 8000", s.Gauges["g"])
	}
	if s.Histograms["h"].Count != 8000 {
		t.Errorf("histogram count = %d, want 8000", s.Histograms["h"].Count)
	}
}

func TestCollectorAggregation(t *testing.T) {
	col := NewCollector(nil)
	col.RecordGeneration(GenerationRecord{Generation: 0, BestValue: 10, MeanFitness: -3, UniqueGenomes: 7, DistinctEvals: 10, Elapsed: time.Millisecond})
	col.RecordGeneration(GenerationRecord{Generation: 1, BestValue: 8, MeanFitness: -2, UniqueGenomes: 5, DistinctEvals: 14, Elapsed: time.Millisecond})
	col.RecordEvaluation(EvaluationRecord{Feasible: true, Fitness: 1})
	col.RecordEvaluation(EvaluationRecord{Feasible: false, Fitness: math.Inf(-1)})
	col.RecordHint(HintRecord{Mechanism: HintGeneImportance})
	col.RecordHint(HintRecord{Mechanism: HintValueTarget, Guided: true})
	col.RecordHint(HintRecord{Mechanism: HintValueUniform, Guided: false})
	col.RecordCache(CacheRecord{Event: CacheMiss, Shard: 1})
	col.RecordCache(CacheRecord{Event: CacheHit, Shard: 1})
	col.RecordCache(CacheRecord{Event: CacheDedup, Shard: 3})
	col.RecordPool(PoolRecord{Event: PoolWorkerBusy, Worker: 0})
	col.RecordPool(PoolRecord{Event: PoolTask, Worker: 0})
	col.RecordPool(PoolRecord{Event: PoolWorkerIdle, Worker: 0})

	s := col.Registry().Snapshot()
	checks := map[string]int64{
		MetricGenerations:           2,
		MetricEvaluations:           2,
		MetricEvalInfeasible:        1,
		MetricCacheHits:             1,
		MetricCacheMisses:           1,
		MetricCacheDedups:           1,
		MetricPoolTasks:             1,
		"hints.gene_importance":     1,
		"hints.value_target":        1,
		"hints.value_uniform":       1,
		gateGuidedMetric:            1,
		gateUnguidedMetric:          1,
		"cache.dedup_waits.shard03": 1,
	}
	for name, want := range checks {
		if got := s.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if s.Gauges[MetricPoolBusyMax] != 1 || s.Gauges[MetricPoolBusy] != 0 {
		t.Errorf("pool gauges: busy=%v max=%v", s.Gauges[MetricPoolBusy], s.Gauges[MetricPoolBusyMax])
	}
	if got := len(col.Generations()); got != 2 {
		t.Errorf("retained %d generations, want 2", got)
	}

	var buf bytes.Buffer
	if err := col.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"run telemetry", "distinct-evals", "evaluations:", "cache:", "hints:", "confidence:", "pool:"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

// TestJournalJSONL checks every event type emits one parseable JSON line
// with its discriminator, and that non-finite floats encode as null rather
// than breaking the encoder.
func TestJournalJSONL(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	j.RecordGeneration(GenerationRecord{Generation: 3, BestValue: math.Inf(1), BestFitness: math.Inf(-1), MeanFitness: math.NaN(), DistinctEvals: 12})
	j.RecordEvaluation(EvaluationRecord{Generation: 3, Feasible: true, Fitness: 1.5})
	j.RecordHint(HintRecord{Generation: 3, Gene: 1, Mechanism: HintValueBias, Guided: true})
	j.RecordCache(CacheRecord{Event: CacheDedup, Shard: 7})
	j.RecordPool(PoolRecord{Event: PoolWorkerBusy, Worker: 2})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("journal has %d lines, want 5:\n%s", len(lines), buf.String())
	}
	wantEvents := []string{"generation", "eval", "hint", "cache", "pool"}
	for i, line := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, line)
		}
		if obj["event"] != wantEvents[i] {
			t.Errorf("line %d event = %v, want %s", i, obj["event"], wantEvents[i])
		}
		if _, ok := obj["t_ms"].(float64); !ok {
			t.Errorf("line %d lacks numeric t_ms: %s", i, line)
		}
	}
	var gen map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &gen); err != nil {
		t.Fatal(err)
	}
	if v, present := gen["best"]; present && v != nil {
		t.Errorf("non-finite best should be omitted or null, got %v", v)
	}
	if gen["distinct_evals"].(float64) != 12 {
		t.Errorf("distinct_evals = %v, want 12", gen["distinct_evals"])
	}
}

func TestJournalConcurrent(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				j.RecordPool(PoolRecord{Event: PoolTask, Worker: w})
			}
		}(w)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 400 {
		t.Fatalf("journal has %d lines, want 400", len(lines))
	}
	for _, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Fatalf("interleaved write corrupted a line: %s", line)
		}
	}
}

// TestJournalConcurrentMixedWriters drives every Recorder event type plus
// the raw-emit path (the span tracer's JSONL sink) from concurrent
// goroutines and checks that no line is torn, every line is valid JSON
// with the mandatory discriminator fields, and nothing is lost.
func TestJournalConcurrentMixedWriters(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				switch i % 5 {
				case 0:
					j.RecordGeneration(GenerationRecord{Generation: i, MeanFitness: math.NaN()})
				case 1:
					j.RecordEvaluation(EvaluationRecord{Generation: i, Feasible: true, Fitness: float64(i)})
				case 2:
					j.RecordCache(CacheRecord{Event: CacheHit, Shard: w})
				case 3:
					j.RecordPool(PoolRecord{Event: PoolTask, Worker: w})
				case 4:
					j.EmitRaw(struct {
						Event   string  `json:"event"`
						TMillis float64 `json:"t_ms"`
						Worker  int     `json:"worker"`
					}{Event: "span", TMillis: j.SinceMillis(), Worker: w})
				}
			}
		}(w)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != workers*perWorker {
		t.Fatalf("journal has %d lines, want %d", len(lines), workers*perWorker)
	}
	counts := map[string]int{}
	for _, line := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("interleaved write corrupted a line: %v\n%s", err, line)
		}
		ev, _ := obj["event"].(string)
		if ev == "" {
			t.Fatalf("line lacks event discriminator: %s", line)
		}
		if _, ok := obj["t_ms"].(float64); !ok {
			t.Fatalf("line lacks numeric t_ms: %s", line)
		}
		counts[ev]++
	}
	want := workers * perWorker / 5
	for _, ev := range []string{"generation", "eval", "cache", "pool", "span"} {
		if counts[ev] != want {
			t.Errorf("event %q count = %d, want %d", ev, counts[ev], want)
		}
	}
}
