package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"math"
	"sync"
	"time"
)

// Journal is a Recorder that writes one JSON object per event line (JSONL)
// - the machine-readable run record that survives the process, replayable
// by any downstream analysis. Every line carries an "event" discriminator
// and "t_ms", milliseconds of wall clock since the journal was opened.
// Wall time is observational only; journaling never feeds back into the
// search, so results stay byte-identical with journaling on or off.
//
// Writes are buffered and serialized under a mutex (events arrive from
// concurrent evaluation workers); call Close (or at least Flush) when the
// run ends.
type Journal struct {
	mu    sync.Mutex
	bw    *bufio.Writer
	enc   *json.Encoder
	start time.Time
	err   error
}

// NewJournal starts a journal on w. The caller retains ownership of any
// underlying file; Close flushes the journal but does not close w.
func NewJournal(w io.Writer) *Journal {
	bw := bufio.NewWriter(w)
	return &Journal{bw: bw, enc: json.NewEncoder(bw), start: time.Now()}
}

// finite returns a pointer to v for JSON encoding, nil (-> null) when v is
// NaN or infinite - encoding/json rejects non-finite floats.
func finite(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}

// emit writes one event line. Errors are sticky and reported by Close.
func (j *Journal) emit(event any) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	j.err = j.enc.Encode(event)
}

// sinceMillis is the journal-relative timestamp of an event.
func (j *Journal) sinceMillis() float64 {
	return float64(time.Since(j.start)) / float64(time.Millisecond)
}

// SinceMillis returns the journal-relative wall clock in milliseconds -
// the same clock every line's "t_ms" field uses - so external emitters
// (the span tracer's JSONL sink) timestamp consistently with run events.
func (j *Journal) SinceMillis() float64 { return j.sinceMillis() }

// EmitRaw writes one arbitrary event line through the journal's encoder,
// serialized with the Recorder events and sharing their sticky-error
// handling. The event should carry its own "event" discriminator field;
// callers own the schema of what they emit.
func (j *Journal) EmitRaw(event any) { j.emit(event) }

// Enabled implements Recorder.
func (j *Journal) Enabled() bool { return true }

// journal line formats, one struct per event type. Field names are part of
// the JSONL contract documented in the README's Observability section.
type journalGeneration struct {
	Event         string   `json:"event"`
	TMillis       float64  `json:"t_ms"`
	Generation    int      `json:"gen"`
	BestValue     *float64 `json:"best,omitempty"`
	BestFitness   *float64 `json:"best_fitness,omitempty"`
	MeanFitness   *float64 `json:"mean_fitness,omitempty"`
	Feasible      int      `json:"feasible"`
	UniqueGenomes int      `json:"unique"`
	DistinctEvals int      `json:"distinct_evals"`
	ElapsedMillis float64  `json:"elapsed_ms"`
}

type journalEvaluation struct {
	Event      string   `json:"event"`
	TMillis    float64  `json:"t_ms"`
	Generation int      `json:"gen"`
	Feasible   bool     `json:"feasible"`
	Fitness    *float64 `json:"fitness,omitempty"`
}

type journalHint struct {
	Event      string  `json:"event"`
	TMillis    float64 `json:"t_ms"`
	Generation int     `json:"gen"`
	Gene       int     `json:"gene"`
	Mechanism  string  `json:"mechanism"`
	Guided     bool    `json:"guided"`
}

type journalCache struct {
	Event   string  `json:"event"`
	TMillis float64 `json:"t_ms"`
	Kind    string  `json:"kind"`
	Shard   int     `json:"shard"`
}

type journalPool struct {
	Event   string  `json:"event"`
	TMillis float64 `json:"t_ms"`
	Kind    string  `json:"kind"`
	Worker  int     `json:"worker"`
}

// RecordGeneration implements Recorder.
func (j *Journal) RecordGeneration(g GenerationRecord) {
	j.emit(journalGeneration{
		Event:         "generation",
		TMillis:       j.sinceMillis(),
		Generation:    g.Generation,
		BestValue:     finite(g.BestValue),
		BestFitness:   finite(g.BestFitness),
		MeanFitness:   finite(g.MeanFitness),
		Feasible:      g.Feasible,
		UniqueGenomes: g.UniqueGenomes,
		DistinctEvals: g.DistinctEvals,
		ElapsedMillis: float64(g.Elapsed) / float64(time.Millisecond),
	})
}

// RecordEvaluation implements Recorder.
func (j *Journal) RecordEvaluation(e EvaluationRecord) {
	j.emit(journalEvaluation{
		Event:      "eval",
		TMillis:    j.sinceMillis(),
		Generation: e.Generation,
		Feasible:   e.Feasible,
		Fitness:    finite(e.Fitness),
	})
}

// RecordHint implements Recorder.
func (j *Journal) RecordHint(h HintRecord) {
	j.emit(journalHint{
		Event:      "hint",
		TMillis:    j.sinceMillis(),
		Generation: h.Generation,
		Gene:       h.Gene,
		Mechanism:  h.Mechanism,
		Guided:     h.Guided,
	})
}

// RecordCache implements Recorder.
func (j *Journal) RecordCache(c CacheRecord) {
	j.emit(journalCache{Event: "cache", TMillis: j.sinceMillis(), Kind: c.Event, Shard: c.Shard})
}

// RecordPool implements Recorder.
func (j *Journal) RecordPool(p PoolRecord) {
	j.emit(journalPool{Event: "pool", TMillis: j.sinceMillis(), Kind: p.Event, Worker: p.Worker})
}

// Flush forces buffered lines out to the underlying writer.
func (j *Journal) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	j.err = j.bw.Flush()
	return j.err
}

// Close flushes the journal and returns the first error encountered over
// its lifetime. It does not close the underlying writer.
func (j *Journal) Close() error { return j.Flush() }
