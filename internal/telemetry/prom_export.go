package telemetry

import (
	"net/http"

	"nautilus/internal/telemetry/prom"
)

// MetricNamespace is the prefix every Nautilus metric carries in
// Prometheus exposition.
const MetricNamespace = "nautilus_"

// PromFamilies converts a registry snapshot into exposition families:
// counters and gauges map directly, fixed-bucket histograms become
// cumulative le-bucket histogram families. Internal dotted names are
// sanitized through prom.Name and prefixed with MetricNamespace.
func PromFamilies(s Snapshot) []prom.Family {
	fams := make([]prom.Family, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for name, v := range s.Counters {
		fams = append(fams, prom.Family{
			Name:    MetricNamespace + prom.Name(name),
			Help:    "counter " + name,
			Type:    prom.TypeCounter,
			Samples: []prom.Sample{{Value: float64(v)}},
		})
	}
	for name, v := range s.Gauges {
		fams = append(fams, prom.Family{
			Name:    MetricNamespace + prom.Name(name),
			Help:    "gauge " + name,
			Type:    prom.TypeGauge,
			Samples: []prom.Sample{{Value: v}},
		})
	}
	for name, h := range s.Histograms {
		f := prom.Family{
			Name: MetricNamespace + prom.Name(name),
			Help: "histogram " + name,
			Type: prom.TypeHistogram,
		}
		var cum int64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			f.Samples = append(f.Samples, prom.Sample{
				Suffix: "_bucket",
				Labels: []prom.Label{{Name: "le", Value: formatBound(bound)}},
				Value:  float64(cum),
			})
		}
		f.Samples = append(f.Samples,
			prom.Sample{Suffix: "_bucket", Labels: []prom.Label{{Name: "le", Value: "+Inf"}}, Value: float64(h.Count)},
			prom.Sample{Suffix: "_sum", Value: h.Sum},
			prom.Sample{Suffix: "_count", Value: float64(h.Count)},
		)
		fams = append(fams, f)
	}
	return fams
}

// formatBound renders a histogram bucket bound as an le label value.
func formatBound(v float64) string {
	return prom.FormatValue(v)
}

// WriteMetrics renders reg's current state in Prometheus text exposition
// format to w.
func WriteMetrics(w http.ResponseWriter, reg *Registry) {
	w.Header().Set("Content-Type", prom.ContentType)
	_ = prom.Write(w, PromFamilies(reg.Snapshot()))
}

// MetricsHandler serves reg in Prometheus text exposition format.
func MetricsHandler(reg *Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		WriteMetrics(w, reg)
	}
}
