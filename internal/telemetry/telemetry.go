// Package telemetry is the observability backbone of the search engine: a
// lock-cheap metrics registry (atomic counters, gauges, and fixed-bucket
// histograms with a consistent Snapshot export) plus a Recorder interface
// for structured run events - generation completed, individual evaluated,
// hint applied or skipped, cache hit/miss/dedup, worker busy/idle.
//
// The paper's central claim is about search *efficiency* - quality reached
// per distinct design-point evaluation - and diagnosing why a search
// converges or stalls needs live visibility into the quantities behind
// that claim: how often hints actually fire versus random mutation (the
// confidence knob of Table 1), cache hit rates over time, worker-pool
// occupancy, and per-generation convergence.
//
// Design constraints, in order:
//
//   - Disabled telemetry is free. Nop is the default recorder everywhere;
//     its methods are empty, take records by value, and allocate nothing,
//     so the GA hot loop pays one static interface call per event.
//   - Telemetry never perturbs the search. Recorders observe decisions the
//     engine already made; they must not draw from the run's RNG, so the
//     parallelism-determinism guarantee (same seed => same result at any
//     parallelism, with telemetry on or off) is preserved by construction.
//   - Recorders are safe for concurrent use: fitness evaluation fans out
//     across workers, and the experiment harness shares one recorder
//     across concurrent GA trials.
//
// Sinks provided here: Collector (aggregates into a Registry and retains
// the per-generation trajectory for an end-of-run summary), Journal
// (structured JSONL run events), and ServeDebug (live expvar + pprof HTTP
// endpoint). Multi tees events to several sinks.
package telemetry

import "time"

// Recorder receives structured run events. Implementations must be safe
// for concurrent use and must not draw from any search RNG. Hot paths may
// consult Enabled to skip building expensive records (timing, means);
// cheap records are sent unconditionally because the no-op sink costs one
// empty method call.
type Recorder interface {
	// Enabled reports whether events are consumed at all. A false return
	// lets instrumented code skip record construction entirely.
	Enabled() bool
	// RecordGeneration reports one completed GA generation.
	RecordGeneration(GenerationRecord)
	// RecordEvaluation reports one individual's fitness evaluation.
	RecordEvaluation(EvaluationRecord)
	// RecordHint reports one guided-mutation decision.
	RecordHint(HintRecord)
	// RecordCache reports one evaluation-cache lookup outcome.
	RecordCache(CacheRecord)
	// RecordPool reports one worker-pool scheduling event.
	RecordPool(PoolRecord)
}

// GenerationRecord summarizes one completed generation of a GA run.
type GenerationRecord struct {
	// Generation is the 0-based generation index.
	Generation int
	// BestValue is the best objective value found so far (Objective.Worst
	// if nothing feasible yet).
	BestValue float64
	// BestFitness is the best raw fitness found so far (-Inf if nothing
	// feasible yet).
	BestFitness float64
	// MeanFitness averages fitness over the generation's feasible
	// individuals (NaN when none are feasible).
	MeanFitness float64
	// Feasible counts feasible individuals in this generation.
	Feasible int
	// UniqueGenomes counts distinct genomes in the population - the
	// diversity signal that collapses as the GA converges.
	UniqueGenomes int
	// DistinctEvals is the cumulative number of distinct design points
	// evaluated - the paper's search-cost metric.
	DistinctEvals int
	// FrontSize and Hypervolume describe the non-dominated archive in
	// multi-objective (pareto) runs: its cardinality after this generation
	// and, for two-objective runs, the dominated area relative to the
	// nadir-derived reference. Zero in scalar runs.
	FrontSize   int
	Hypervolume float64
	// Elapsed is the wall-clock time this generation took (evaluation
	// through bookkeeping). Wall time never feeds back into the search.
	Elapsed time.Duration
}

// EvaluationRecord reports one individual's fitness evaluation.
type EvaluationRecord struct {
	// Generation is the generation the individual belongs to.
	Generation int
	// Feasible reports whether the design point was feasible under the
	// objective.
	Feasible bool
	// Fitness is the raw fitness assigned (-Inf when infeasible).
	Fitness float64
}

// Hint mechanisms - which rule produced a guided-mutation decision. These
// are the measurable counterparts of the paper's Table 1 hint vocabulary.
const (
	// HintGeneImportance: the mutated gene was drawn from the
	// importance-weighted distribution (importance hint in effect).
	HintGeneImportance = "gene_importance"
	// HintGeneUniform: the mutated gene was drawn with no effective
	// importance skew (no hint set, fully decayed, or confidence 0).
	HintGeneUniform = "gene_uniform"
	// HintValueTarget: the new value was sampled around a target hint.
	HintValueTarget = "value_target"
	// HintValueBias: the new value moved along an oriented bias hint.
	HintValueBias = "value_bias"
	// HintValueUniform: the new value fell back to the baseline uniform
	// draw (gate closed, no hint, or bias deferred).
	HintValueUniform = "value_uniform"
)

// HintRecord reports one guided-mutation decision: either a gene pick
// (which gene mutates) or a value move (what the gene becomes).
type HintRecord struct {
	// Generation is the breeding generation.
	Generation int
	// Gene is the parameter index the decision concerns.
	Gene int
	// Mechanism is one of the Hint* constants above.
	Mechanism string
	// Guided reports the confidence-gate outcome for value moves: true
	// when the per-mutation confidence coin landed guided (even if the
	// mechanism then deferred to uniform). Always false for gene picks,
	// whose blending is continuous rather than gated.
	Guided bool
}

// Cache lookup outcomes.
const (
	// CacheHit: the design point was already characterized.
	CacheHit = "hit"
	// CacheMiss: this lookup owns the evaluation (a spent synthesis job).
	CacheMiss = "miss"
	// CacheDedup: another goroutine is evaluating the same point; this
	// lookup blocked on its result (singleflight wait).
	CacheDedup = "dedup"
	// CacheTransient: the owned evaluation ended in a transient error; the
	// entry was withdrawn so the point stays re-evaluable (never memoized).
	CacheTransient = "transient"
	// CacheCollision: a hash-keyed lookup probed past an entry whose
	// 64-bit hash matched but whose packed genome did not. Collisions are
	// correctness-neutral (identity is (hash, genome)) but each one costs
	// an extra probe, so a rising rate flags a degenerate hash seed.
	CacheCollision = "collision"
)

// CacheRecord reports one evaluation-cache lookup.
type CacheRecord struct {
	// Event is one of CacheHit, CacheMiss, CacheDedup.
	Event string
	// Shard is the lock stripe the key hashed to.
	Shard int
}

// Worker-pool events.
const (
	// PoolTask: a worker ran one task.
	PoolTask = "task"
	// PoolWorkerBusy: a worker started claiming tasks.
	PoolWorkerBusy = "busy"
	// PoolWorkerIdle: a worker ran out of tasks and exited.
	PoolWorkerIdle = "idle"
)

// PoolRecord reports one worker-pool scheduling event.
type PoolRecord struct {
	// Event is one of PoolTask, PoolWorkerBusy, PoolWorkerIdle.
	Event string
	// Worker is the worker's index within its pool.
	Worker int
}

// nop is the disabled recorder: every method is an empty body, so the
// compiled hot loop pays only the interface dispatch.
type nop struct{}

func (nop) Enabled() bool                     { return false }
func (nop) RecordGeneration(GenerationRecord) {}
func (nop) RecordEvaluation(EvaluationRecord) {}
func (nop) RecordHint(HintRecord)             {}
func (nop) RecordCache(CacheRecord)           {}
func (nop) RecordPool(PoolRecord)             {}

// Nop is the default, zero-allocation recorder that discards every event.
var Nop Recorder = nop{}

// OrNop returns r, or Nop when r is nil - the guard every instrumented
// component applies so a nil recorder is always safe.
func OrNop(r Recorder) Recorder {
	if r == nil {
		return Nop
	}
	return r
}

// multi fans events out to several recorders in order.
type multi []Recorder

func (m multi) Enabled() bool { return true }
func (m multi) RecordGeneration(rec GenerationRecord) {
	for _, r := range m {
		r.RecordGeneration(rec)
	}
}
func (m multi) RecordEvaluation(rec EvaluationRecord) {
	for _, r := range m {
		r.RecordEvaluation(rec)
	}
}
func (m multi) RecordHint(rec HintRecord) {
	for _, r := range m {
		r.RecordHint(rec)
	}
}
func (m multi) RecordCache(rec CacheRecord) {
	for _, r := range m {
		r.RecordCache(rec)
	}
}
func (m multi) RecordPool(rec PoolRecord) {
	for _, r := range m {
		r.RecordPool(rec)
	}
}

// Multi tees events to every non-nil, non-Nop recorder given. It returns
// Nop when nothing remains and the single recorder unwrapped when only one
// does, so the common cases pay no fan-out cost.
func Multi(rs ...Recorder) Recorder {
	kept := make(multi, 0, len(rs))
	for _, r := range rs {
		if r == nil || r == Nop {
			continue
		}
		kept = append(kept, r)
	}
	switch len(kept) {
	case 0:
		return Nop
	case 1:
		return kept[0]
	}
	return kept
}
