package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"nautilus/internal/telemetry"
)

// collect is a test sink accumulating every span.
type collect struct {
	mu    sync.Mutex
	spans []Span
}

func (c *collect) OnSpan(s Span) {
	c.mu.Lock()
	c.spans = append(c.spans, s)
	c.mu.Unlock()
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports Enabled")
	}
	a := tr.Start("root")
	b := a.Child("child")
	a.Emit("phase", time.Time{}, time.Second)
	b.End()
	a.End() // must not panic, must not deliver anywhere
}

func TestParentChildLinks(t *testing.T) {
	sink := &collect{}
	tr := New(Config{Session: "s1", Seed: 42, Sinks: []Sink{sink}})
	root := tr.Start("ga.generation")
	child := root.Child("ga.dispatch")
	child.End()
	root.Emit("ga.selection", time.Time{}, 5*time.Millisecond)
	root.End()

	if len(sink.spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(sink.spans))
	}
	disp, sel, gen := sink.spans[0], sink.spans[1], sink.spans[2]
	if gen.Name != "ga.generation" || gen.Parent != 0 {
		t.Errorf("root span = %+v, want name ga.generation with no parent", gen)
	}
	if disp.Parent != gen.ID || disp.Trace != gen.Trace {
		t.Errorf("child span %+v not linked under root %+v", disp, gen)
	}
	if sel.Parent != gen.ID || sel.Duration != 5*time.Millisecond {
		t.Errorf("emitted span %+v, want parent %d dur 5ms", sel, gen.ID)
	}
	for _, s := range sink.spans {
		if s.Session != "s1" {
			t.Errorf("span %q session = %q, want s1", s.Name, s.Session)
		}
		if s.ID == 0 {
			t.Errorf("span %q has zero ID", s.Name)
		}
	}
}

func TestSeededIDsAreDeterministic(t *testing.T) {
	run := func() []uint64 {
		sink := &collect{}
		tr := New(Config{Seed: 7, Sinks: []Sink{sink}})
		a := tr.Start("a")
		a.Child("b").End()
		a.End()
		ids := make([]uint64, 0, len(sink.spans))
		for _, s := range sink.spans {
			ids = append(ids, s.ID)
		}
		return ids
	}
	first, second := run(), run()
	if len(first) != 2 {
		t.Fatalf("got %d spans, want 2", len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("span IDs differ across identical runs: %v vs %v", first, second)
		}
	}
}

func TestRingFlightRecorder(t *testing.T) {
	r := NewRing(4)
	tr := New(Config{Sinks: []Sink{r}})
	for i := 0; i < 10; i++ {
		tr.Start(fmt.Sprintf("op%d", i)).End()
	}
	got := r.Snapshot()
	if len(got) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(got))
	}
	for i, s := range got {
		want := fmt.Sprintf("op%d", 6+i)
		if s.Name != want {
			t.Errorf("ring[%d] = %q, want %q (oldest first)", i, s.Name, want)
		}
	}

	if nr := NewRing(0); nr != nil {
		t.Error("NewRing(0) should return nil")
	}
	var nilRing *Ring
	nilRing.OnSpan(Span{}) // must not panic
	if s := nilRing.Snapshot(); s != nil {
		t.Errorf("nil ring snapshot = %v, want nil", s)
	}
}

func TestRingPartialFill(t *testing.T) {
	r := NewRing(8)
	tr := New(Config{Sinks: []Sink{r}})
	tr.Start("only").End()
	got := r.Snapshot()
	if len(got) != 1 || got[0].Name != "only" {
		t.Fatalf("partial ring snapshot = %v, want [only]", got)
	}
}

func TestDurationsSink(t *testing.T) {
	d := NewDurations()
	tr := New(Config{Sinks: []Sink{d}})
	root := tr.Start("phase.a")
	root.Emit("phase.b", time.Time{}, 2*time.Millisecond)
	root.Emit("phase.b", time.Time{}, 4*time.Millisecond)
	root.End()

	snap := d.Hists.Snapshot()
	if snap["phase.b"].Count != 2 {
		t.Errorf("phase.b count = %d, want 2", snap["phase.b"].Count)
	}
	if snap["phase.b"].Sum != int64(6*time.Millisecond) {
		t.Errorf("phase.b sum = %d, want %d", snap["phase.b"].Sum, int64(6*time.Millisecond))
	}
	if snap["phase.a"].Count != 1 {
		t.Errorf("phase.a count = %d, want 1", snap["phase.a"].Count)
	}
}

func TestJournalSink(t *testing.T) {
	var buf bytes.Buffer
	j := telemetry.NewJournal(&buf)
	tr := New(Config{Session: "sess", Seed: 1, Sinks: []Sink{JournalSink{J: j}}})
	root := tr.Start("ga.generation")
	root.Child("ga.dispatch").End()
	root.End()
	if err := j.Close(); err != nil {
		t.Fatalf("journal close: %v", err)
	}

	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("got %d journal lines, want 2", len(lines))
	}
	var line struct {
		Event   string  `json:"event"`
		TMillis float64 `json:"t_ms"`
		Name    string  `json:"name"`
		Session string  `json:"session"`
		Trace   uint64  `json:"trace"`
		ID      uint64  `json:"id"`
		Parent  uint64  `json:"parent"`
		DurNs   int64   `json:"dur_ns"`
	}
	if err := json.Unmarshal(lines[0], &line); err != nil {
		t.Fatalf("bad JSONL line %s: %v", lines[0], err)
	}
	if line.Event != "span" || line.Name != "ga.dispatch" || line.Session != "sess" {
		t.Errorf("line = %+v, want span/ga.dispatch/sess", line)
	}
	if line.Parent == 0 || line.Trace == 0 {
		t.Errorf("line %+v missing trace/parent linkage", line)
	}
}

func TestConcurrentSpans(t *testing.T) {
	r := NewRing(64)
	d := NewDurations()
	tr := New(Config{Sinks: []Sink{r, d}})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				a := tr.Start("root")
				a.Child("leaf").End()
				a.End()
			}
		}()
	}
	wg.Wait()
	snap := d.Hists.Snapshot()
	if snap["root"].Count != 1600 || snap["leaf"].Count != 1600 {
		t.Fatalf("counts = %d/%d, want 1600/1600", snap["root"].Count, snap["leaf"].Count)
	}
	if got := len(r.Snapshot()); got != 64 {
		t.Fatalf("ring snapshot len = %d, want 64", got)
	}
}
