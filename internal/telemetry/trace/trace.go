// Package trace is Nautilus' zero-dependency span tracer: a structural
// complement to the telemetry package's counters. Counters say how often;
// spans say where the wall-clock went on one specific request - which
// generation, which batch resolve, which retry loop.
//
// Design constraints, in order:
//
//   - A nil *Tracer is the disabled tracer and costs one nil check per
//     instrumentation point. Every method is nil-safe, so instrumented
//     code threads the tracer unconditionally and never branches on a
//     separate "enabled" flag.
//   - Tracing never perturbs the search. Span IDs come from a private
//     splitmix64 stream seeded at construction and advanced by an atomic
//     counter - never from the run RNG - so results are byte-identical
//     with tracing on or off (enforced by test, like the Recorder
//     contract).
//   - Allocation-lean: Active handles are values, Start/Child/End
//     allocate nothing themselves; the only per-span cost beyond two
//     time.Now calls is whatever each sink does (the Ring copies a
//     struct under a mutex, the hist sink does three atomic adds).
//
// Spans flow to Sinks: Ring (a fixed-size flight recorder of the most
// recent spans, inspectable over the debug API after the fact), Spans'
// duration aggregation into hist.Set (powering per-phase latency
// histograms on /metrics), and JournalSink (JSONL export through a
// telemetry.Journal).
package trace

import (
	"sync"
	"sync/atomic"
	"time"

	"nautilus/internal/telemetry"
	"nautilus/internal/telemetry/hist"
)

// Span is one completed timed operation. Parent links express the
// structural nesting (generation -> dispatch -> cache batch) without the
// sinks needing to keep per-trace state.
type Span struct {
	// Trace groups the spans of one root operation (one generation, one
	// HTTP request). All descendants share the root's Trace.
	Trace uint64 `json:"trace"`
	// ID identifies this span within the process.
	ID uint64 `json:"id"`
	// Parent is the enclosing span's ID (0 for roots).
	Parent uint64 `json:"parent,omitempty"`
	// Name is the span taxonomy entry, e.g. "ga.generation" (DESIGN §9).
	Name string `json:"name"`
	// Session labels which service session produced the span ("" for CLI
	// runs).
	Session string `json:"session,omitempty"`
	// Start is when the operation began.
	Start time.Time `json:"-"`
	// Duration is how long it took.
	Duration time.Duration `json:"dur_ns"`
}

// Sink consumes completed spans. Implementations must be safe for
// concurrent use and must return quickly: OnSpan runs inline at the
// instrumentation point.
type Sink interface {
	OnSpan(Span)
}

// Config parameterizes a Tracer.
type Config struct {
	// Session labels every span this tracer emits.
	Session string
	// Seed seeds the span-ID stream. Unrelated to (and never mixed with)
	// any search RNG; two tracers with the same seed emit the same IDs.
	Seed int64
	// Sinks receive every completed span, in order.
	Sinks []Sink
}

// Tracer mints spans and fans completed ones out to its sinks. The nil
// Tracer is the disabled tracer: every method no-ops and Enabled reports
// false.
type Tracer struct {
	session string
	seed    uint64
	ids     atomic.Uint64
	sinks   []Sink
}

// New builds a tracer. Sinks equal to nil are dropped.
func New(cfg Config) *Tracer {
	t := &Tracer{session: cfg.Session, seed: splitmix64(uint64(cfg.Seed))}
	for _, s := range cfg.Sinks {
		if s != nil {
			t.sinks = append(t.sinks, s)
		}
	}
	return t
}

// Enabled reports whether spans are consumed at all; instrumented code
// may skip measuring phases when false.
func (t *Tracer) Enabled() bool { return t != nil }

// splitmix64 is the SplitMix64 finalizer - the same mixing construction
// param.Space.Hash64 uses, applied to a private counter stream here.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// nextID mints a process-unique-enough span ID from the seeded stream.
func (t *Tracer) nextID() uint64 {
	id := splitmix64(t.seed + t.ids.Add(1))
	if id == 0 {
		id = 1 // 0 means "no parent"
	}
	return id
}

// Active is a started span. It is a value: copying is cheap, and the
// zero Active (from a nil tracer) no-ops everywhere.
type Active struct {
	t    *Tracer
	span Span
}

// Start begins a root span (a fresh trace). On a nil tracer it returns
// the inert zero Active without reading the clock.
func (t *Tracer) Start(name string) Active {
	if t == nil {
		return Active{}
	}
	id := t.nextID()
	return Active{t: t, span: Span{
		Trace:   id,
		ID:      id,
		Name:    name,
		Session: t.session,
		Start:   time.Now(),
	}}
}

// Child begins a span nested under a. Inert when a came from a nil
// tracer.
func (a Active) Child(name string) Active {
	if a.t == nil {
		return Active{}
	}
	return Active{t: a.t, span: Span{
		Trace:   a.span.Trace,
		ID:      a.t.nextID(),
		Parent:  a.span.ID,
		Name:    name,
		Session: a.t.session,
		Start:   time.Now(),
	}}
}

// End completes the span and delivers it to the sinks. Inert on the zero
// Active; calling End twice delivers twice (don't).
func (a Active) End() {
	if a.t == nil {
		return
	}
	a.span.Duration = time.Since(a.span.Start)
	a.t.deliver(a.span)
}

// Emit records a pre-measured child span under a - for phases whose
// duration was accumulated out-of-band (the GA's per-generation operator
// phases, backoff waits) where a live child span per sample would be too
// hot or structurally awkward. start may be zero when only the duration
// is known.
func (a Active) Emit(name string, start time.Time, d time.Duration) {
	if a.t == nil {
		return
	}
	a.t.deliver(Span{
		Trace:    a.span.Trace,
		ID:       a.t.nextID(),
		Parent:   a.span.ID,
		Name:     name,
		Session:  a.t.session,
		Start:    start,
		Duration: d,
	})
}

// Event records a pre-measured root span - for one-shot occurrences
// (fault injections, external stalls) measured out-of-band that have no
// enclosing Active. start may be zero when only the duration is known.
func (t *Tracer) Event(name string, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	id := t.nextID()
	t.deliver(Span{
		Trace:    id,
		ID:       id,
		Name:     name,
		Session:  t.session,
		Start:    start,
		Duration: d,
	})
}

// deliver fans a completed span out to the sinks.
func (t *Tracer) deliver(s Span) {
	for _, sink := range t.sinks {
		sink.OnSpan(s)
	}
}

// Ring is a fixed-capacity flight recorder: it retains the last N
// completed spans, overwriting the oldest. Snapshot returns them oldest
// first. The zero Ring (or nil) drops everything.
type Ring struct {
	mu   sync.Mutex
	buf  []Span
	next int
	full bool
}

// NewRing returns a flight recorder retaining the last n spans (nil when
// n <= 0, which is a valid, always-empty Ring).
func NewRing(n int) *Ring {
	if n <= 0 {
		return nil
	}
	return &Ring{buf: make([]Span, n)}
}

// OnSpan implements Sink.
func (r *Ring) OnSpan(s Span) {
	if r == nil || len(r.buf) == 0 {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = s
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Snapshot returns the retained spans, oldest first.
func (r *Ring) Snapshot() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Span(nil), r.buf[:r.next]...)
	}
	out := make([]Span, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Durations aggregates span durations into a hist.Set keyed by span
// name - the bridge from individual spans to the per-phase latency
// histograms /metrics exposes.
type Durations struct {
	Hists *hist.Set
}

// NewDurations returns a duration-aggregating sink over a fresh set.
func NewDurations() *Durations { return &Durations{Hists: hist.NewSet()} }

// OnSpan implements Sink.
func (d *Durations) OnSpan(s Span) {
	if d == nil || d.Hists == nil {
		return
	}
	d.Hists.Observe(s.Name, int64(s.Duration))
}

// JournalSink exports spans as JSONL lines through a telemetry.Journal,
// interleaved (and mutex-serialized) with the journal's run events. Each
// line carries event="span" plus the Span fields.
type JournalSink struct {
	J *telemetry.Journal
}

// journalSpan is the JSONL line format for one span.
type journalSpan struct {
	Event   string  `json:"event"`
	TMillis float64 `json:"t_ms"`
	Span
	DurMicros float64 `json:"dur_us"`
}

// OnSpan implements Sink.
func (s JournalSink) OnSpan(sp Span) {
	if s.J == nil {
		return
	}
	s.J.EmitRaw(journalSpan{
		Event:     "span",
		TMillis:   s.J.SinceMillis(),
		Span:      sp,
		DurMicros: float64(sp.Duration) / float64(time.Microsecond),
	})
}
