// Package hist provides lock-free power-of-two-bucket histograms for
// latency distributions. Where telemetry.Histogram needs its bucket
// bounds chosen up front (fine for one well-understood quantity like
// per-generation wall time), Hist covers the full int64 range with 65
// fixed buckets - bucket i holds values in [2^(i-1), 2^i) - so one type
// serves nanosecond-scale span durations and minute-scale synthesis runs
// alike with bounded (power-of-two) relative quantile error.
//
// Observe is a few atomic adds and a bits.Len64; there is no lock, no
// allocation, and no contention beyond cache-line sharing, so it is safe
// on the dispatch hot path. Snapshots are consistent enough for
// monitoring: each bucket is read atomically, concurrent observers may
// land between reads.
package hist

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// NumBuckets is the number of histogram buckets: bucket 0 counts
// non-positive values, bucket i (1..63) counts values in [2^(i-1), 2^i)
// - the highest bucket caps at MaxInt64, the largest observable sample.
const NumBuckets = 64

// Hist is a lock-free histogram over int64 samples (typically
// nanoseconds). The zero value is ready to use.
type Hist struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [NumBuckets]atomic.Int64
}

// New returns an empty histogram.
func New() *Hist { return &Hist{} }

// bucketOf maps a sample to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v)) // 1..63 for v >= 1
}

// Observe records one sample.
func (h *Hist) Observe(v int64) {
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration sample in nanoseconds.
func (h *Hist) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Snapshot returns a point-in-time copy of the histogram.
func (h *Hist) Snapshot() Snapshot {
	var s Snapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Snapshot is a point-in-time copy of a Hist, suitable for quantile
// estimation and exposition.
type Snapshot struct {
	// Buckets[i] counts samples in [BucketLo(i), BucketHi(i)).
	Buckets [NumBuckets]int64
	// Count is the total number of samples.
	Count int64
	// Sum is the running sum of all samples.
	Sum int64
}

// BucketLo returns the inclusive lower bound of bucket i.
func BucketLo(i int) int64 {
	if i <= 0 {
		return math.MinInt64
	}
	return 1 << (i - 1)
}

// BucketHi returns the exclusive upper bound of bucket i (MaxInt64 for
// the last bucket, whose true bound 2^64 overflows).
func BucketHi(i int) int64 {
	if i <= 0 {
		return 1
	}
	if i >= 63 {
		return math.MaxInt64
	}
	return 1 << i
}

// Quantile estimates the q-th quantile (0 <= q <= 1) by locating the
// bucket holding the q-th sample and interpolating linearly inside it.
// The estimate is within the true sample's bucket, so relative error is
// bounded by the power-of-two bucket width. Returns 0 when empty.
func (s *Snapshot) Quantile(q float64) float64 {
	if s.Count <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the sample we want.
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		if cum+n < rank {
			cum += n
			continue
		}
		if i == 0 {
			return 0 // non-positive samples: report 0
		}
		lo, hi := math.Ldexp(1, i-1), math.Ldexp(1, i)
		// Interpolate by the rank's position within this bucket.
		frac := (float64(rank-cum) - 0.5) / float64(n)
		return lo + frac*(hi-lo)
	}
	return 0
}

// P50 returns the estimated median.
func (s *Snapshot) P50() float64 { return s.Quantile(0.50) }

// P90 returns the estimated 90th percentile.
func (s *Snapshot) P90() float64 { return s.Quantile(0.90) }

// P99 returns the estimated 99th percentile.
func (s *Snapshot) P99() float64 { return s.Quantile(0.99) }

// Mean returns the arithmetic mean of all samples (0 when empty).
func (s *Snapshot) Mean() float64 {
	if s.Count <= 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Set is a named collection of histograms, created lazily on first
// Observe. Lookups take a read lock; creation takes the write lock once
// per name. It backs per-span-name and per-route latency aggregation.
type Set struct {
	mu sync.RWMutex
	m  map[string]*Hist
}

// NewSet returns an empty histogram set.
func NewSet() *Set { return &Set{m: make(map[string]*Hist)} }

// Get returns the named histogram, creating it on first use.
func (s *Set) Get(name string) *Hist {
	s.mu.RLock()
	h, ok := s.m[name]
	s.mu.RUnlock()
	if ok {
		return h
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if h, ok = s.m[name]; ok {
		return h
	}
	h = New()
	s.m[name] = h
	return h
}

// Observe records one sample into the named histogram.
func (s *Set) Observe(name string, v int64) { s.Get(name).Observe(v) }

// Snapshot returns a point-in-time copy of every histogram in the set.
func (s *Set) Snapshot() map[string]Snapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]Snapshot, len(s.m))
	for name, h := range s.m {
		out[name] = h.Snapshot()
	}
	return out
}
