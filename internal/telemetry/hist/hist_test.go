package hist

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// refQuantile is the exact sorted-slice reference the histogram estimate
// is judged against (nearest-rank definition, matching Quantile's rank).
func refQuantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// checkQuantiles asserts that each estimated quantile lands inside the
// power-of-two bucket that holds the true sample - the histogram's
// documented accuracy contract.
func checkQuantiles(t *testing.T, name string, samples []int64) {
	t.Helper()
	h := New()
	for _, v := range samples {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != int64(len(samples)) {
		t.Fatalf("%s: Count = %d, want %d", name, s.Count, len(samples))
	}
	var sum int64
	for _, v := range samples {
		sum += v
	}
	if s.Sum != sum {
		t.Fatalf("%s: Sum = %d, want %d", name, s.Sum, sum)
	}

	sorted := append([]int64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		truth := refQuantile(sorted, q)
		got := s.Quantile(q)
		b := bucketOf(truth)
		lo, hi := float64(BucketLo(b)), float64(BucketHi(b))
		if truth <= 0 {
			lo = 0
			hi = 1
		}
		if got < lo || got > hi {
			t.Errorf("%s: q=%.2f estimate %.2f outside bucket [%g, %g] of true value %d",
				name, q, got, lo, hi, truth)
		}
	}
}

func TestQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))

	// Adversarial distributions called out in the issue: all-equal,
	// bimodal, single sample - plus uniform and heavy-tailed sanity cases.
	allEqual := make([]int64, 1000)
	for i := range allEqual {
		allEqual[i] = 4096
	}

	bimodal := make([]int64, 0, 1000)
	for i := 0; i < 900; i++ {
		bimodal = append(bimodal, 100+rng.Int63n(50)) // fast mode ~100ns
	}
	for i := 0; i < 100; i++ {
		bimodal = append(bimodal, 1_000_000+rng.Int63n(500_000)) // slow mode ~1ms
	}

	uniform := make([]int64, 10_000)
	for i := range uniform {
		uniform[i] = rng.Int63n(1_000_000)
	}

	heavyTail := make([]int64, 5_000)
	for i := range heavyTail {
		heavyTail[i] = int64(math.Exp(rng.Float64() * 20))
	}

	cases := map[string][]int64{
		"all-equal":     allEqual,
		"bimodal":       bimodal,
		"single-sample": {12345},
		"uniform":       uniform,
		"heavy-tail":    heavyTail,
		"with-zeros":    {0, 0, 0, 5, 5, 5},
	}
	for name, samples := range cases {
		checkQuantiles(t, name, samples)
	}
}

func TestBimodalSeparation(t *testing.T) {
	// The p50 must sit in the fast mode and the p99 in the slow mode; a
	// quantile sketch that smears the modes together would fail this.
	h := New()
	for i := 0; i < 900; i++ {
		h.Observe(128)
	}
	for i := 0; i < 100; i++ {
		h.Observe(1 << 20)
	}
	s := h.Snapshot()
	if p50 := s.P50(); p50 < 64 || p50 > 256 {
		t.Errorf("p50 = %g, want within the fast mode [64, 256]", p50)
	}
	if p99 := s.P99(); p99 < 1<<19 || p99 > 1<<21 {
		t.Errorf("p99 = %g, want within the slow mode [2^19, 2^21]", p99)
	}
}

func TestEmptyAndEdgeBuckets(t *testing.T) {
	var h Hist
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %g, want 0", got)
	}
	if got := s.Mean(); got != 0 {
		t.Errorf("empty histogram mean = %g, want 0", got)
	}

	// Extreme samples must land in the outermost buckets without panics
	// or overflow.
	h.Observe(math.MinInt64)
	h.Observe(-1)
	h.Observe(0)
	h.Observe(1)
	h.Observe(math.MaxInt64)
	s = h.Snapshot()
	if s.Buckets[0] != 3 {
		t.Errorf("bucket 0 = %d, want 3 (non-positive samples)", s.Buckets[0])
	}
	if s.Buckets[1] != 1 {
		t.Errorf("bucket 1 = %d, want 1", s.Buckets[1])
	}
	if s.Buckets[63] != 1 {
		t.Errorf("bucket 63 = %d, want 1 (MaxInt64)", s.Buckets[63])
	}
	if q := s.Quantile(1); math.IsNaN(q) || math.IsInf(q, 0) {
		t.Errorf("Quantile(1) with MaxInt64 sample = %g, want finite", q)
	}
}

func TestObserveDuration(t *testing.T) {
	h := New()
	h.ObserveDuration(2 * time.Millisecond)
	s := h.Snapshot()
	if s.Sum != int64(2*time.Millisecond) {
		t.Errorf("Sum = %d, want %d", s.Sum, int64(2*time.Millisecond))
	}
}

func TestConcurrentObserve(t *testing.T) {
	h := New()
	const workers, perWorker = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				h.Observe(rng.Int63n(1 << 30))
			}
		}(int64(w))
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("Count = %d, want %d", s.Count, workers*perWorker)
	}
	var bucketTotal int64
	for _, n := range s.Buckets {
		bucketTotal += n
	}
	if bucketTotal != s.Count {
		t.Fatalf("bucket total %d != count %d", bucketTotal, s.Count)
	}
}

func TestSet(t *testing.T) {
	s := NewSet()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Observe("a", 10)
				s.Observe("b", 20)
			}
		}()
	}
	wg.Wait()
	snap := s.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d histograms, want 2", len(snap))
	}
	if snap["a"].Count != 4000 || snap["b"].Count != 4000 {
		t.Fatalf("counts = %d/%d, want 4000/4000", snap["a"].Count, snap["b"].Count)
	}
}
