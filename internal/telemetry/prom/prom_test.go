package prom

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"nautilus/internal/telemetry/hist"
)

func TestName(t *testing.T) {
	cases := map[string]string{
		"cache.dedup_waits":        "cache_dedup_waits",
		"ga.generation_ms":         "ga_generation_ms",
		"http//v1/jobs":            "http__v1_jobs",
		"9lives":                   "_9lives",
		"ok_name:with_colon":       "ok_name:with_colon",
		"spaces and-dashes":        "spaces_and_dashes",
		"shared.10.0.0.1.distinct": "shared_10_0_0_1_distinct",
	}
	for in, want := range cases {
		if got := Name(in); got != want {
			t.Errorf("Name(%q) = %q, want %q", in, got, want)
		}
		if !validName(Name(in)) {
			t.Errorf("Name(%q) = %q is not a valid exposition name", in, Name(in))
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	h := hist.New()
	for _, v := range []int64{100, 200, 1500, 1500, 90_000} {
		h.Observe(v)
	}
	histFam := Family{Name: "nautilus_span_ga_generation_ns", Help: "per-generation latency", Type: TypeHistogram}
	histFam.AddHist([]Label{{"session", "s1"}}, h.Snapshot())
	histFam.AddHist([]Label{{"session", "s2"}}, h.Snapshot())

	fams := []Family{
		{Name: "nautilus_cache_hits", Help: "cache hits", Type: TypeCounter,
			Samples: []Sample{{Value: 42}}},
		{Name: "nautilus_http_in_flight", Help: "in-flight requests", Type: TypeGauge,
			Samples: []Sample{{Value: 3}}},
		{Name: "nautilus_http_requests_total", Help: `routes with "quotes" and \slashes`, Type: TypeCounter,
			Samples: []Sample{
				{Labels: []Label{{"route", `/v1/jobs`}, {"class", "2xx"}}, Value: 10},
				{Labels: []Label{{"route", `/v1/jobs`}, {"class", "5xx"}}, Value: 1},
			}},
		histFam,
	}

	var buf bytes.Buffer
	if err := Write(&buf, fams); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Parse rejected our own output:\n%s\nerr: %v", buf.String(), err)
	}
	if len(got) != len(fams) {
		t.Fatalf("round trip: %d families, want %d", len(got), len(fams))
	}
	byName := map[string]Family{}
	for _, f := range got {
		byName[f.Name] = f
	}
	if f := byName["nautilus_cache_hits"]; f.Type != TypeCounter || len(f.Samples) != 1 || f.Samples[0].Value != 42 {
		t.Errorf("counter family mangled: %+v", f)
	}
	if f := byName["nautilus_http_requests_total"]; len(f.Samples) != 2 || f.Samples[0].Labels[0].Value != "/v1/jobs" {
		t.Errorf("labeled counter mangled: %+v", f)
	}
	hf := byName["nautilus_span_ga_generation_ns"]
	if hf.Type != TypeHistogram {
		t.Fatalf("histogram family type = %q", hf.Type)
	}
	// 2 label sets x (4 non-empty buckets + Inf + sum + count)
	if len(hf.Samples) != 14 {
		t.Errorf("histogram family has %d samples, want 14", len(hf.Samples))
	}
}

func TestWriteIsSortedAndDeterministic(t *testing.T) {
	fams := []Family{
		{Name: "zzz", Type: TypeGauge, Samples: []Sample{{Value: 1}}},
		{Name: "aaa", Type: TypeGauge, Samples: []Sample{{Value: 2}}},
	}
	var a, b bytes.Buffer
	if err := Write(&a, fams); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, fams); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("Write output not deterministic")
	}
	if strings.Index(a.String(), "aaa") > strings.Index(a.String(), "zzz") {
		t.Error("families not sorted by name")
	}
}

func TestWriteRejectsInvalidNames(t *testing.T) {
	if err := Write(&bytes.Buffer{}, []Family{{Name: "bad-name", Type: TypeGauge}}); err == nil {
		t.Error("Write accepted an invalid metric name")
	}
	if err := Write(&bytes.Buffer{}, []Family{{
		Name: "ok", Type: TypeGauge,
		Samples: []Sample{{Labels: []Label{{"bad-label", "v"}}, Value: 1}},
	}}); err == nil {
		t.Error("Write accepted an invalid label name")
	}
}

func TestParseStrictness(t *testing.T) {
	cases := map[string]string{
		"sample without TYPE": `some_metric 3`,
		"HELP but no TYPE": `# HELP some_metric described
some_metric 3`,
		"unknown type": `# TYPE some_metric countersz
some_metric 3`,
		"negative counter": `# TYPE some_total counter
some_total -1`,
		"NaN counter": `# TYPE some_total counter
some_total NaN`,
		"duplicate sample": `# TYPE m gauge
m{a="1"} 3
m{a="1"} 4`,
		"duplicate TYPE": `# TYPE m gauge
# TYPE m counter
m 1`,
		"bad label syntax": `# TYPE m gauge
m{a=unquoted} 1`,
		"unterminated labels": `# TYPE m gauge
m{a="1" 1`,
		"missing value": `# TYPE m gauge
m{a="1"}`,
		"histogram missing +Inf": `# TYPE h histogram
h_bucket{le="10"} 1
h_sum 5
h_count 1`,
		"histogram Inf != count": `# TYPE h histogram
h_bucket{le="10"} 1
h_bucket{le="+Inf"} 1
h_sum 5
h_count 2`,
		"histogram non-cumulative": `# TYPE h histogram
h_bucket{le="10"} 5
h_bucket{le="20"} 3
h_bucket{le="+Inf"} 5
h_sum 5
h_count 5`,
		"histogram bare sample": `# TYPE h histogram
h 5`,
		"invalid name": `# TYPE bad-metric gauge
bad-metric 1`,
	}
	for name, input := range cases {
		if _, err := Parse(strings.NewReader(input)); err == nil {
			t.Errorf("%s: Parse accepted invalid exposition:\n%s", name, input)
		}
	}
}

func TestParseAcceptsValidCorners(t *testing.T) {
	input := `# HELP m a help with \\ backslash
# TYPE m gauge
m{a="va\"lue",b="line\nbreak"} -1.5e3

# TYPE t counter
t 0
# TYPE inf_gauge gauge
inf_gauge +Inf
`
	fams, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatalf("Parse rejected valid exposition: %v", err)
	}
	if len(fams) != 3 {
		t.Fatalf("got %d families, want 3", len(fams))
	}
	if fams[0].Samples[0].Labels[0].Value != `va"lue` {
		t.Errorf("escaped quote mangled: %q", fams[0].Samples[0].Labels[0].Value)
	}
	if fams[0].Samples[0].Labels[1].Value != "line\nbreak" {
		t.Errorf("escaped newline mangled: %q", fams[0].Samples[0].Labels[1].Value)
	}
	if !math.IsInf(fams[2].Samples[0].Value, 1) {
		t.Errorf("inf gauge = %v, want +Inf", fams[2].Samples[0].Value)
	}
}

func TestFromHistEmpty(t *testing.T) {
	var h hist.Hist
	f := FromHist("empty_ns", "no samples yet", nil, h.Snapshot())
	var buf bytes.Buffer
	if err := Write(&buf, []Family{f}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if _, err := Parse(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("empty histogram exposition invalid:\n%s\nerr: %v", buf.String(), err)
	}
}
