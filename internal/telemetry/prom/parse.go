package prom

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Parse reads text exposition format strictly and returns the families
// in input order. It is deliberately pickier than Prometheus' own
// scraper - it is the CI gate that keeps /metrics well-formed:
//
//   - every sample must belong to a family declared by a preceding
//     # TYPE line (untyped samples are a bug here, not a convenience);
//   - metric and label names must be syntactically valid;
//   - counter values must be finite and non-negative;
//   - histogram families must carry _bucket/_sum/_count samples per
//     label set, buckets must be cumulative and non-decreasing in le
//     order, and the +Inf bucket must be present and equal the count;
//   - duplicate samples (same name, suffix, and label set) are errors.
func Parse(r io.Reader) ([]Family, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)

	var fams []Family
	byName := make(map[string]int)
	seen := make(map[string]bool) // duplicate-sample detection
	lineNo := 0

	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			rest := strings.TrimPrefix(line, "#")
			rest = strings.TrimPrefix(rest, " ")
			switch {
			case strings.HasPrefix(rest, "HELP "):
				name, help, ok := cutSpace(strings.TrimPrefix(rest, "HELP "))
				if !ok && name == "" {
					return nil, fmt.Errorf("line %d: malformed HELP line", lineNo)
				}
				if !validName(name) {
					return nil, fmt.Errorf("line %d: invalid metric name %q in HELP", lineNo, name)
				}
				i, ok2 := byName[name]
				if !ok2 {
					byName[name] = len(fams)
					fams = append(fams, Family{Name: name, Help: help})
				} else {
					fams[i].Help = help
				}
			case strings.HasPrefix(rest, "TYPE "):
				name, typ, ok := cutSpace(strings.TrimPrefix(rest, "TYPE "))
				if !ok {
					return nil, fmt.Errorf("line %d: malformed TYPE line", lineNo)
				}
				if !validName(name) {
					return nil, fmt.Errorf("line %d: invalid metric name %q in TYPE", lineNo, name)
				}
				switch Type(typ) {
				case TypeCounter, TypeGauge, TypeHistogram, TypeUntyped, "summary":
				default:
					return nil, fmt.Errorf("line %d: unknown metric type %q for %s", lineNo, typ, name)
				}
				i, ok2 := byName[name]
				if !ok2 {
					byName[name] = len(fams)
					fams = append(fams, Family{Name: name, Type: Type(typ)})
				} else {
					if fams[i].Type != "" {
						return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
					}
					fams[i].Type = Type(typ)
				}
			default:
				// Other comments are permitted by the format; strictness
				// stops at unknown # directives that look like typos.
				if strings.HasPrefix(strings.TrimSpace(rest), "HELP") || strings.HasPrefix(strings.TrimSpace(rest), "TYPE") {
					return nil, fmt.Errorf("line %d: malformed comment %q", lineNo, line)
				}
			}
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		famName, suffix := name, ""
		i, ok := byName[famName]
		if !ok {
			// Histogram component samples attach to their base family.
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if strings.HasSuffix(name, suf) {
					if j, ok2 := byName[strings.TrimSuffix(name, suf)]; ok2 && fams[j].Type == TypeHistogram {
						famName, suffix = strings.TrimSuffix(name, suf), suf
						i, ok = j, true
					}
					break
				}
			}
		}
		if !ok {
			return nil, fmt.Errorf("line %d: sample %q has no preceding # TYPE declaration", lineNo, name)
		}
		f := &fams[i]
		if f.Type == "" {
			return nil, fmt.Errorf("line %d: sample %q has HELP but no TYPE", lineNo, name)
		}
		if f.Type == TypeHistogram && suffix == "" {
			return nil, fmt.Errorf("line %d: histogram %s has a bare sample (want _bucket/_sum/_count)", lineNo, name)
		}
		if f.Type == TypeCounter && (value < 0 || math.IsNaN(value) || math.IsInf(value, 0)) {
			return nil, fmt.Errorf("line %d: counter %s has non-finite or negative value %v", lineNo, name, value)
		}
		key := sampleKey(famName, suffix, labels)
		if seen[key] {
			return nil, fmt.Errorf("line %d: duplicate sample %s", lineNo, key)
		}
		seen[key] = true
		f.Samples = append(f.Samples, Sample{Suffix: suffix, Labels: labels, Value: value})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	for i := range fams {
		if fams[i].Type == "" {
			return nil, fmt.Errorf("metric %s has HELP but no TYPE", fams[i].Name)
		}
		if fams[i].Type == TypeHistogram {
			if err := checkHistogram(&fams[i]); err != nil {
				return nil, err
			}
		}
	}
	return fams, nil
}

// cutSpace splits at the first space; ok reports whether a space existed.
func cutSpace(s string) (before, after string, ok bool) {
	i := strings.IndexByte(s, ' ')
	if i < 0 {
		return s, "", false
	}
	return s[:i], s[i+1:], true
}

// sampleKey canonicalizes a sample's identity for duplicate detection.
func sampleKey(name, suffix string, labels []Label) string {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteString(name)
	b.WriteString(suffix)
	for _, l := range ls {
		fmt.Fprintf(&b, `|%s=%q`, l.Name, l.Value)
	}
	return b.String()
}

// parseSample parses one `name{labels} value` line.
func parseSample(line string) (string, []Label, float64, error) {
	rest := line
	var name string
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	} else {
		name = rest[:i]
		rest = rest[i:]
	}
	if !validName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	var labels []Label
	if strings.HasPrefix(rest, "{") {
		end := strings.LastIndexByte(rest, '}')
		if end < 0 {
			return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
		}
		var err error
		labels, err = parseLabels(rest[1:end])
		if err != nil {
			return "", nil, 0, err
		}
		rest = rest[end+1:]
	}
	valueStr := strings.TrimSpace(rest)
	if valueStr == "" {
		return "", nil, 0, fmt.Errorf("sample %q has no value", line)
	}
	// Optional timestamp (we never emit one, but the format allows it).
	if fields := strings.Fields(valueStr); len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("sample %q has trailing garbage", line)
	} else if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", nil, 0, fmt.Errorf("sample %q has a malformed timestamp", line)
		}
		valueStr = fields[0]
	}
	value, err := parseFloat(valueStr)
	if err != nil {
		return "", nil, 0, fmt.Errorf("sample %q has malformed value: %w", line, err)
	}
	return name, labels, value, nil
}

// parseFloat accepts the exposition value syntax including +Inf/-Inf/NaN.
func parseFloat(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseLabels parses the inside of a {...} label set.
func parseLabels(s string) ([]Label, error) {
	var labels []Label
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("malformed label pair in %q", s)
		}
		name := strings.TrimSpace(s[:eq])
		if !validLabelName(name) {
			return nil, fmt.Errorf("invalid label name %q", name)
		}
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, fmt.Errorf("label %s value not quoted", name)
		}
		s = s[1:]
		var b strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					b.WriteByte('\n')
				case '\\', '"':
					b.WriteByte(s[i])
				default:
					return nil, fmt.Errorf("bad escape \\%c in label %s", s[i], name)
				}
				continue
			}
			if c == '"' {
				s = s[i+1:]
				closed = true
				break
			}
			b.WriteByte(c)
		}
		if !closed {
			return nil, fmt.Errorf("unterminated value for label %s", name)
		}
		labels = append(labels, Label{Name: name, Value: b.String()})
		s = strings.TrimPrefix(strings.TrimSpace(s), ",")
		s = strings.TrimSpace(s)
	}
	return labels, nil
}

// checkHistogram validates the histogram contract per label set:
// cumulative non-decreasing buckets in ascending le order, a +Inf bucket
// equal to the count, and matched _sum/_count samples.
func checkHistogram(f *Family) error {
	type series struct {
		les      []float64
		counts   []float64
		count    *float64
		sum      *float64
		hasInf   bool
		infCount float64
	}
	byLabels := make(map[string]*series)
	order := []string{}
	get := func(labels []Label) *series {
		key := sampleKey("", "", labels)
		s, ok := byLabels[key]
		if !ok {
			s = &series{}
			byLabels[key] = s
			order = append(order, key)
		}
		return s
	}
	for _, smp := range f.Samples {
		switch smp.Suffix {
		case "_bucket":
			var le string
			rest := make([]Label, 0, len(smp.Labels))
			for _, l := range smp.Labels {
				if l.Name == "le" {
					le = l.Value
					continue
				}
				rest = append(rest, l)
			}
			if le == "" {
				return fmt.Errorf("histogram %s: bucket sample without le label", f.Name)
			}
			bound, err := parseFloat(le)
			if err != nil {
				return fmt.Errorf("histogram %s: malformed le %q", f.Name, le)
			}
			s := get(rest)
			if math.IsInf(bound, 1) {
				s.hasInf = true
				s.infCount = smp.Value
			}
			s.les = append(s.les, bound)
			s.counts = append(s.counts, smp.Value)
		case "_sum":
			v := smp.Value
			get(smp.Labels).sum = &v
		case "_count":
			v := smp.Value
			get(smp.Labels).count = &v
		}
	}
	for _, key := range order {
		s := byLabels[key]
		if !s.hasInf {
			return fmt.Errorf("histogram %s%s: missing +Inf bucket", f.Name, key)
		}
		if s.count == nil || s.sum == nil {
			return fmt.Errorf("histogram %s%s: missing _sum or _count", f.Name, key)
		}
		if s.infCount != *s.count {
			return fmt.Errorf("histogram %s%s: +Inf bucket %v != count %v", f.Name, key, s.infCount, *s.count)
		}
		for i := 1; i < len(s.les); i++ {
			if s.les[i] <= s.les[i-1] {
				return fmt.Errorf("histogram %s%s: le bounds not ascending", f.Name, key)
			}
			if s.counts[i] < s.counts[i-1] {
				return fmt.Errorf("histogram %s%s: bucket counts not cumulative", f.Name, key)
			}
		}
	}
	return nil
}
