// Package prom renders metrics in the Prometheus text exposition format
// (version 0.0.4) and parses it back strictly. It is hand-rolled on
// purpose: Nautilus takes no third-party dependencies, and the slice of
// the format we need - counters, gauges, histograms with labels - is
// small. The parser is the contract's enforcement arm: CI scrapes
// /metrics and feeds it through Parse, so a malformed line or a renamed
// metric fails the build rather than silently breaking dashboards.
//
// Naming scheme (DESIGN §9): internal dotted metric names such as
// "cache.dedup_waits" become "nautilus_cache_dedup_waits" - the Name
// function maps every character outside [a-zA-Z0-9_:] to '_' and callers
// prepend the "nautilus_" namespace. Durations are exposed in
// nanoseconds with a "_ns" suffix rather than rescaled to seconds, so
// exposition stays integer-exact.
package prom

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"nautilus/internal/telemetry/hist"
)

// ContentType is the HTTP Content-Type of text exposition format 0.0.4.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Type is a metric family's type as declared by its # TYPE line.
type Type string

// The metric types this package emits and accepts.
const (
	TypeCounter   Type = "counter"
	TypeGauge     Type = "gauge"
	TypeHistogram Type = "histogram"
	TypeUntyped   Type = "untyped"
)

// Label is one name="value" pair on a sample.
type Label struct {
	Name  string
	Value string
}

// Sample is one exposition line within a family. Suffix extends the
// family name ("_bucket", "_sum", "_count" for histograms; empty for
// scalars).
type Sample struct {
	Suffix string
	Labels []Label
	Value  float64
}

// Family is one metric family: a # HELP line, a # TYPE line, and its
// samples.
type Family struct {
	Name    string
	Help    string
	Type    Type
	Samples []Sample
}

// Name maps an internal metric name to a valid exposition name:
// characters outside [a-zA-Z0-9_:] become '_', and a leading digit gets
// a '_' prefix.
func Name(s string) string {
	var b strings.Builder
	b.Grow(len(s) + 1)
	for i, r := range s {
		valid := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if valid {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// validName reports whether s is a legal exposition metric name.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z'):
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// validLabelName reports whether s is a legal label name.
func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, r := range s {
		switch {
		case r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z'):
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// FormatValue renders a sample value (or an le bucket bound) the way
// Prometheus expects: +Inf/-Inf/NaN spelled out, shortest round-trip
// float otherwise.
func FormatValue(v float64) string { return formatValue(v) }

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP string (backslash and newline).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value (backslash, quote, newline).
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Write renders the families in exposition format. Families are written
// sorted by name and each family's samples in the order given, so output
// is deterministic for golden tests. Invalid metric or label names are
// an error - the writer enforces the same rules the parser does.
func Write(w io.Writer, fams []Family) error {
	sorted := append([]Family(nil), fams...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	bw := bufio.NewWriter(w)
	for _, f := range sorted {
		if !validName(f.Name) {
			return fmt.Errorf("prom: invalid metric name %q", f.Name)
		}
		typ := f.Type
		if typ == "" {
			typ = TypeUntyped
		}
		if f.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.Name, typ)
		for _, s := range f.Samples {
			bw.WriteString(f.Name)
			bw.WriteString(s.Suffix)
			if len(s.Labels) > 0 {
				bw.WriteByte('{')
				for i, l := range s.Labels {
					if !validLabelName(l.Name) {
						return fmt.Errorf("prom: invalid label name %q on %s", l.Name, f.Name)
					}
					if i > 0 {
						bw.WriteByte(',')
					}
					fmt.Fprintf(bw, `%s="%s"`, l.Name, escapeLabel(l.Value))
				}
				bw.WriteByte('}')
			}
			bw.WriteByte(' ')
			bw.WriteString(formatValue(s.Value))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// AddHist appends one hist.Snapshot's cumulative le buckets, sum, and
// count to a histogram family. Only buckets that hold samples contribute
// a boundary (plus the mandatory +Inf), keeping exposition proportional
// to the distribution's spread rather than the full 64-bucket range.
// labels distinguish series within the family (e.g. route="/v1/jobs");
// the le label is appended after them.
func (f *Family) AddHist(labels []Label, s hist.Snapshot) {
	var cum int64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		cum += n
		le := formatValue(float64(hist.BucketHi(i)))
		f.Samples = append(f.Samples, Sample{
			Suffix: "_bucket",
			Labels: append(append([]Label(nil), labels...), Label{"le", le}),
			Value:  float64(cum),
		})
	}
	f.Samples = append(f.Samples,
		Sample{Suffix: "_bucket", Labels: append(append([]Label(nil), labels...), Label{"le", "+Inf"}), Value: float64(s.Count)},
		Sample{Suffix: "_sum", Labels: labels, Value: float64(s.Sum)},
		Sample{Suffix: "_count", Labels: labels, Value: float64(s.Count)},
	)
}

// FromHist converts one hist.Snapshot into a histogram family (see
// AddHist for the bucket layout).
func FromHist(name, help string, labels []Label, s hist.Snapshot) Family {
	f := Family{Name: name, Help: help, Type: TypeHistogram}
	f.AddHist(labels, s)
	return f
}
