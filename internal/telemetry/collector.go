package telemetry

import (
	"fmt"
	"io"
	"math"
	"sync"
	"time"
)

// Metric names the Collector maintains in its Registry. Exported so tests
// and the debug endpoint can reference them without string drift.
const (
	MetricGenerations      = "ga.generations"
	MetricEvaluations      = "ga.evaluations"
	MetricEvalInfeasible   = "ga.evaluations_infeasible"
	MetricGenerationMillis = "ga.generation_ms"
	MetricBestValue        = "ga.best_value"
	MetricMeanFitness      = "ga.mean_fitness"
	MetricUniqueGenomes    = "ga.unique_genomes"
	MetricDistinctEvals    = "ga.distinct_evals"
	MetricCacheHits        = "cache.hits"
	MetricCacheMisses      = "cache.misses"
	MetricCacheDedups      = "cache.dedup_waits"
	MetricCacheTransient   = "cache.transient_errors"
	MetricCacheCollisions  = "cache.collisions"
	MetricPoolTasks        = "pool.tasks"
	MetricPoolBusy         = "pool.workers_busy"
	MetricPoolBusyMax      = "pool.workers_busy_max"
	hintMetricPrefix       = "hints."
	gateGuidedMetric       = "hints.gate_guided"
	gateUnguidedMetric     = "hints.gate_unguided"
	dedupShardFmt          = "cache.dedup_waits.shard%02d"
)

// generationMillisBounds are the fixed buckets for per-generation wall
// time: sub-millisecond analytical models through multi-minute synthesis.
var generationMillisBounds = []float64{0.01, 0.1, 1, 10, 100, 1_000, 10_000, 60_000}

// Collector aggregates run events into a Registry and retains the
// per-generation trajectory, powering the end-of-run summary and the live
// debug endpoint. It is safe for concurrent use; counter updates are
// atomic and only generation retention takes a mutex.
type Collector struct {
	reg *Registry

	generations    *Counter
	evals          *Counter
	evalInfeasible *Counter
	genMillis      *Histogram
	bestValue      *Gauge
	meanFitness    *Gauge
	uniqueGenomes  *Gauge
	distinctEvals  *Gauge

	hintCounters map[string]*Counter // per mechanism, pre-resolved
	gateGuided   *Counter
	gateUnguided *Counter

	cacheHits       *Counter
	cacheMisses     *Counter
	cacheDedups     *Counter
	cacheTransient  *Counter
	cacheCollisions *Counter

	poolTasks *Counter
	poolBusy  *Gauge
	poolMax   *Gauge

	mu     sync.Mutex
	gens   []GenerationRecord
	retain bool
}

// NewCollector builds a collector over reg (a fresh registry when nil).
func NewCollector(reg *Registry) *Collector {
	if reg == nil {
		reg = NewRegistry()
	}
	c := &Collector{
		reg:             reg,
		generations:     reg.Counter(MetricGenerations),
		evals:           reg.Counter(MetricEvaluations),
		evalInfeasible:  reg.Counter(MetricEvalInfeasible),
		genMillis:       reg.Histogram(MetricGenerationMillis, generationMillisBounds),
		bestValue:       reg.Gauge(MetricBestValue),
		meanFitness:     reg.Gauge(MetricMeanFitness),
		uniqueGenomes:   reg.Gauge(MetricUniqueGenomes),
		distinctEvals:   reg.Gauge(MetricDistinctEvals),
		hintCounters:    make(map[string]*Counter, 5),
		gateGuided:      reg.Counter(gateGuidedMetric),
		gateUnguided:    reg.Counter(gateUnguidedMetric),
		cacheHits:       reg.Counter(MetricCacheHits),
		cacheMisses:     reg.Counter(MetricCacheMisses),
		cacheDedups:     reg.Counter(MetricCacheDedups),
		cacheTransient:  reg.Counter(MetricCacheTransient),
		cacheCollisions: reg.Counter(MetricCacheCollisions),
		poolTasks:       reg.Counter(MetricPoolTasks),
		poolBusy:        reg.Gauge(MetricPoolBusy),
		poolMax:         reg.Gauge(MetricPoolBusyMax),
	}
	c.retain = true
	for _, mech := range []string{
		HintGeneImportance, HintGeneUniform,
		HintValueTarget, HintValueBias, HintValueUniform,
	} {
		c.hintCounters[mech] = reg.Counter(hintMetricPrefix + mech)
	}
	return c
}

// DisableGenerationRetention stops the collector from keeping the
// per-generation record slice. Aggregate counters, gauges, and histograms
// are unaffected; Generations returns nil afterwards. Long-lived processes
// (the nautserve daemon) aggregate unbounded numbers of runs into one
// collector and must not grow memory per generation.
func (c *Collector) DisableGenerationRetention() {
	c.mu.Lock()
	c.retain = false
	c.gens = nil
	c.mu.Unlock()
}

// Registry returns the collector's backing registry (for ServeDebug).
func (c *Collector) Registry() *Registry { return c.reg }

// Enabled implements Recorder.
func (c *Collector) Enabled() bool { return true }

// RecordGeneration implements Recorder.
func (c *Collector) RecordGeneration(g GenerationRecord) {
	c.generations.Inc()
	c.genMillis.Observe(float64(g.Elapsed) / float64(time.Millisecond))
	c.bestValue.Set(g.BestValue)
	c.meanFitness.Set(g.MeanFitness)
	c.uniqueGenomes.Set(float64(g.UniqueGenomes))
	c.distinctEvals.Set(float64(g.DistinctEvals))
	c.mu.Lock()
	if c.retain {
		c.gens = append(c.gens, g)
	}
	c.mu.Unlock()
}

// RecordEvaluation implements Recorder.
func (c *Collector) RecordEvaluation(e EvaluationRecord) {
	c.evals.Inc()
	if !e.Feasible {
		c.evalInfeasible.Inc()
	}
}

// RecordHint implements Recorder.
func (c *Collector) RecordHint(h HintRecord) {
	if ctr, ok := c.hintCounters[h.Mechanism]; ok {
		ctr.Inc()
	}
	switch h.Mechanism {
	case HintValueTarget, HintValueBias, HintValueUniform:
		if h.Guided {
			c.gateGuided.Inc()
		} else {
			c.gateUnguided.Inc()
		}
	}
}

// RecordCache implements Recorder.
func (c *Collector) RecordCache(r CacheRecord) {
	switch r.Event {
	case CacheHit:
		c.cacheHits.Inc()
	case CacheMiss:
		c.cacheMisses.Inc()
	case CacheDedup:
		c.cacheDedups.Inc()
		// Dedup waits are contention events, rare by design; resolving the
		// per-shard counter lazily here keeps the hit/miss fast path
		// allocation-free.
		c.reg.Counter(fmt.Sprintf(dedupShardFmt, r.Shard)).Inc()
	case CacheTransient:
		c.cacheTransient.Inc()
	case CacheCollision:
		c.cacheCollisions.Inc()
	}
}

// RecordPool implements Recorder.
func (c *Collector) RecordPool(p PoolRecord) {
	switch p.Event {
	case PoolTask:
		c.poolTasks.Inc()
	case PoolWorkerBusy:
		c.poolBusy.Add(1)
		c.poolMax.Max(c.poolBusy.Value())
	case PoolWorkerIdle:
		c.poolBusy.Add(-1)
	}
}

// Generations returns a copy of the retained per-generation records.
func (c *Collector) Generations() []GenerationRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]GenerationRecord(nil), c.gens...)
}

// hintCount returns the aggregated count for a mechanism.
func (c *Collector) hintCount(mech string) int64 {
	if ctr, ok := c.hintCounters[mech]; ok {
		return ctr.Value()
	}
	return 0
}

// WriteSummary renders the human-readable end-of-run report: the
// per-generation trajectory table (the successor of the ad-hoc -trace
// table), then evaluation, cache, hint-application, and pool totals. Hint
// rates read directly against the paper's confidence sweep: at confidence
// c, roughly a fraction c of value moves should be guided.
func (c *Collector) WriteSummary(w io.Writer) error {
	gens := c.Generations()
	fmt.Fprintln(w, "== run telemetry ==")
	if len(gens) > 0 {
		fmt.Fprintln(w, "gen  distinct-evals  best-so-far   mean-fitness  unique  elapsed")
		for _, g := range gens {
			fmt.Fprintf(w, "%3d  %14d  %-12.6g  %-12.6g  %6d  %s\n",
				g.Generation, g.DistinctEvals, g.BestValue, g.MeanFitness,
				g.UniqueGenomes, g.Elapsed.Round(time.Microsecond))
		}
	}
	evals := c.evals.Value()
	fmt.Fprintf(w, "evaluations:  %d requested, %d infeasible\n",
		evals, c.evalInfeasible.Value())

	hits, misses, dedups := c.cacheHits.Value(), c.cacheMisses.Value(), c.cacheDedups.Value()
	if total := hits + misses + dedups; total > 0 {
		fmt.Fprintf(w, "cache:        %d lookups: %d hits (%.1f%% hit ratio), %d misses, %d deduped waits",
			total, hits, 100*float64(hits)/float64(total), misses, dedups)
		if collisions := c.cacheCollisions.Value(); collisions > 0 {
			fmt.Fprintf(w, ", %d hash collisions", collisions)
		}
		fmt.Fprintln(w)
	}
	if transient := c.cacheTransient.Value(); transient > 0 {
		fmt.Fprintf(w, "faults:       %d transient evaluation failures withdrawn from the cache\n", transient)
	}
	// Supervisor counters appear when a resilience policy shares this
	// registry (referenced by name to keep telemetry independent of the
	// resilience package; read through a snapshot so absent counters are
	// not registered as zeros).
	snap := c.reg.Snapshot()
	retries := snap.Counters["resilience.retries"]
	timeouts := snap.Counters["resilience.timeouts"]
	quarantined := snap.Counters["resilience.quarantined"]
	if retries+timeouts+quarantined > 0 {
		fmt.Fprintf(w, "resilience:   %d retries, %d timeouts, %d points quarantined\n",
			retries, timeouts, quarantined)
	}

	genePicks := c.hintCount(HintGeneImportance) + c.hintCount(HintGeneUniform)
	valueMoves := c.hintCount(HintValueTarget) + c.hintCount(HintValueBias) + c.hintCount(HintValueUniform)
	if genePicks+valueMoves > 0 {
		fmt.Fprintf(w, "hints:        gene picks %d importance-weighted / %d uniform; value moves %d target, %d bias, %d uniform\n",
			c.hintCount(HintGeneImportance), c.hintCount(HintGeneUniform),
			c.hintCount(HintValueTarget), c.hintCount(HintValueBias), c.hintCount(HintValueUniform))
		guided, unguided := c.gateGuided.Value(), c.gateUnguided.Value()
		if gate := guided + unguided; gate > 0 {
			fmt.Fprintf(w, "confidence:   gate guided %d / unguided %d (%.1f%% applied)\n",
				guided, unguided, 100*float64(guided)/float64(gate))
		}
	}

	if tasks := c.poolTasks.Value(); tasks > 0 {
		maxBusy := c.poolMax.Value()
		if math.IsNaN(maxBusy) {
			maxBusy = 0
		}
		fmt.Fprintf(w, "pool:         %d tasks, peak %d workers busy\n", tasks, int(maxBusy))
	}
	return nil
}
