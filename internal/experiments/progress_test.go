package experiments

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"testing"
)

func TestProgressPersistLoadRoundTrip(t *testing.T) {
	cfg := Config{Runs: 2, Generations: 5}
	path := filepath.Join(t.TempDir(), "progress.json")
	p := NewProgress(path, cfg)
	tables := []Table{{
		Name:   "fig1",
		Title:  "t",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}},
	}}
	if err := p.Record("fig1", tables); err != nil {
		t.Fatal(err)
	}

	p2, err := LoadProgress(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := p2.Completed("fig1")
	if !ok || !reflect.DeepEqual(got, tables) {
		t.Fatalf("Completed = %+v (ok=%v), want stored tables", got, ok)
	}
	if p2.CompletedCount() != 1 {
		t.Errorf("CompletedCount = %d, want 1", p2.CompletedCount())
	}
}

func TestLoadProgressValidation(t *testing.T) {
	cfg := Config{Runs: 2, Generations: 5}
	dir := t.TempDir()
	path := filepath.Join(dir, "progress.json")

	// Missing file is not an error: resume flags are safe on first runs.
	if p, err := LoadProgress(path, cfg); err != nil || p.CompletedCount() != 0 {
		t.Fatalf("missing file: p=%v err=%v, want fresh tracker", p, err)
	}

	p := NewProgress(path, cfg)
	if err := p.Record("fig1", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadProgress(path, Config{Runs: 3, Generations: 5}); err == nil {
		t.Error("mismatched -runs accepted")
	}
	if _, err := LoadProgress(path, Config{Runs: 2, Generations: 9}); err == nil {
		t.Error("mismatched -gens accepted")
	}
}

func TestSetSaveEveryHoldsBackPersist(t *testing.T) {
	cfg := Config{Runs: 1, Generations: 1}
	path := filepath.Join(t.TempDir(), "progress.json")
	p := NewProgress(path, cfg)
	p.SetSaveEvery(3)
	if err := p.Record("fig1", nil); err != nil {
		t.Fatal(err)
	}
	if err := p.Record("fig2", nil); err != nil {
		t.Fatal(err)
	}
	// Two records held back: nothing on disk yet.
	if loaded, err := LoadProgress(path, cfg); err != nil || loaded.CompletedCount() != 0 {
		t.Fatalf("before flush: count=%d err=%v, want empty file", loaded.CompletedCount(), err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadProgress(path, cfg)
	if err != nil || loaded.CompletedCount() != 2 {
		t.Fatalf("after flush: count=%d err=%v, want 2", loaded.CompletedCount(), err)
	}
}

// TestRunResumableSkipsCompleted uses a tiny real figure run to prove a
// resumed invocation replays stored tables without recomputing them, and
// that cancellation stops before the next figure.
func TestRunResumableSkipsCompleted(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two real figures")
	}
	cfg := Config{Runs: 1, Generations: 2, Parallelism: 2}
	names := []string{"fig4", "fig5"}
	path := filepath.Join(t.TempDir(), "progress.json")

	prog := NewProgress(path, cfg)
	want, err := RunResumable(context.Background(), cfg, names, prog)
	if err != nil {
		t.Fatal(err)
	}
	if prog.CompletedCount() != 2 {
		t.Fatalf("completed %d figures, want 2", prog.CompletedCount())
	}

	// Resume with everything done: tables come back identical from the file.
	prog2, err := LoadProgress(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunResumable(context.Background(), cfg, names, prog2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("replayed tables differ from the original run")
	}

	// A canceled context still replays completed figures but refuses to
	// start new work, wrapping the context error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	partial, err := RunResumable(ctx, cfg, []string{"fig4", "fig6"}, prog2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if len(partial) == 0 {
		t.Error("completed figure was not replayed under a canceled context")
	}
}
