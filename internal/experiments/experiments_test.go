package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// fastCfg keeps experiment smoke tests quick; the full paper-scale runs
// happen in the benchmark harness and cmd/experiments.
func fastCfg() Config {
	return Config{Runs: 4, Generations: 12}
}

func checkTables(t *testing.T, tables []Table, err error, wantNames ...string) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*Table{}
	for i := range tables {
		byName[tables[i].Name] = &tables[i]
	}
	for _, name := range wantNames {
		tab, ok := byName[name]
		if !ok {
			t.Fatalf("missing table %q", name)
		}
		if len(tab.Header) == 0 || len(tab.Rows) == 0 {
			t.Fatalf("table %q is empty", name)
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Header) {
				t.Fatalf("table %q row width %d != header %d", name, len(row), len(tab.Header))
			}
		}
	}
}

func TestFig1(t *testing.T) {
	tables, err := Fig1(fastCfg())
	checkTables(t, tables, err, "fig1")
	if len(tables[0].Rows) != 2 {
		t.Errorf("fig1 should have 2 metric rows, got %d", len(tables[0].Rows))
	}
}

func TestFig2(t *testing.T) {
	tables, err := Fig2(fastCfg())
	checkTables(t, tables, err, "fig2")
	if len(tables[0].Rows) != 8 {
		t.Errorf("fig2 should have 8 topology rows, got %d", len(tables[0].Rows))
	}
}

func TestFig3(t *testing.T) {
	tables, err := Fig3(fastCfg())
	checkTables(t, tables, err, "fig3", "fig3_curve")
	// The curve covers generations 0..N.
	curve := tables[1]
	if curve.Rows[0][0] != "0" {
		t.Errorf("fig3 curve should start at generation 0, got %s", curve.Rows[0][0])
	}
}

func TestFig4(t *testing.T) {
	tables, err := Fig4(fastCfg())
	checkTables(t, tables, err, "fig4", "fig4_curve")
	if len(tables[0].Rows) != 3 {
		t.Errorf("fig4 should compare 3 variants, got %d", len(tables[0].Rows))
	}
}

func TestFig5(t *testing.T) {
	tables, err := Fig5(fastCfg())
	checkTables(t, tables, err, "fig5", "fig5_curve")
}

func TestFig6(t *testing.T) {
	tables, err := Fig6(fastCfg())
	checkTables(t, tables, err, "fig6", "fig6_curve")
	if len(tables[0].Rows) != 4 {
		t.Errorf("fig6 should have 4 rows (3 GA variants + random), got %d", len(tables[0].Rows))
	}
}

func TestFig7(t *testing.T) {
	tables, err := Fig7(fastCfg())
	checkTables(t, tables, err, "fig7", "fig7_curve")
}

func TestHeadline(t *testing.T) {
	tables, err := Headline(fastCfg())
	checkTables(t, tables, err, "headline")
	if len(tables[0].Rows) != 5 {
		t.Errorf("headline should have 5 query rows, got %d", len(tables[0].Rows))
	}
}

func TestAblations(t *testing.T) {
	cfg := Config{Runs: 3, Generations: 10}
	tables, err := Ablations(cfg)
	checkTables(t, tables, err,
		"ablation_confidence", "ablation_hint_classes", "ablation_decay", "ablation_wrong_hints")
}

func TestTableFprint(t *testing.T) {
	tab := Table{
		Name:   "x",
		Title:  "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"a note"},
	}
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"demo", "a note", "333"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fprint output missing %q:\n%s", want, out)
		}
	}
}

func TestCSVOutput(t *testing.T) {
	dir := t.TempDir()
	cfg := fastCfg()
	cfg.OutDir = dir
	if _, err := Fig1(cfg); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig1.csv", "fig1_scatter.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("missing %s: %v", name, err)
		}
		if len(bytes.Split(data, []byte("\n"))) < 3 {
			t.Errorf("%s has too few lines", name)
		}
	}
}

func TestSeedForDeterministic(t *testing.T) {
	if seedFor("a", "b", 1) != seedFor("a", "b", 1) {
		t.Error("seedFor not deterministic")
	}
	if seedFor("a", "b", 1) == seedFor("a", "b", 2) {
		t.Error("seedFor should vary with run index")
	}
	if seedFor("a", "b", 1) == seedFor("a", "c", 1) {
		t.Error("seedFor should vary with variant")
	}
}

func TestRatioFormatting(t *testing.T) {
	if got := ratio(10, 5); got != "2.0x" {
		t.Errorf("ratio = %q", got)
	}
	if got := ratio(1, 0); got != "n/a" {
		t.Errorf("ratio(div0) = %q", got)
	}
}

func TestExtensionBaselines(t *testing.T) {
	tables, err := ExtensionBaselines(Config{Runs: 3, Generations: 15})
	checkTables(t, tables, err, "ext_baselines")
	if len(tables[0].Rows) != 5 {
		t.Errorf("expected 5 methods, got %d", len(tables[0].Rows))
	}
}

func TestExtensionPareto(t *testing.T) {
	tables, err := ExtensionPareto(Config{Runs: 1, Generations: 15})
	checkTables(t, tables, err, "ext_pareto")
}

func TestExtensionSimVsAnalytical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep is slow")
	}
	tables, err := ExtensionSimVsAnalytical(Config{})
	checkTables(t, tables, err, "ext_sim_vs_analytical")
	if len(tables[0].Rows) != 7 {
		t.Errorf("expected 7 topology rows, got %d", len(tables[0].Rows))
	}
}

func TestExtensionThirdIP(t *testing.T) {
	tables, err := ExtensionThirdIP(Config{Runs: 3, Generations: 12})
	checkTables(t, tables, err, "ext_thirdip")
	if len(tables[0].Rows) != 3 {
		t.Errorf("expected 3 variants, got %d", len(tables[0].Rows))
	}
}

func TestWriteMarkdown(t *testing.T) {
	tables := []Table{{
		Name:   "demo",
		Title:  "a demo | table",
		Header: []string{"col_a", "col_b"},
		Rows:   [][]string{{"1", "x|y"}, {"2", "z"}},
		Notes:  []string{"a note"},
	}}
	var buf bytes.Buffer
	if err := WriteMarkdown(&buf, tables, time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# Nautilus experiment report",
		"2026-07-05",
		"## demo",
		"| col_a | col_b |",
		"| --- | --- |",
		"x\\|y", // pipes escaped inside cells
		"> a note",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
	// Deterministic for a fixed timestamp.
	var buf2 bytes.Buffer
	WriteMarkdown(&buf2, tables, time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC))
	if buf.String() != buf2.String() {
		t.Error("markdown output not deterministic")
	}
}
