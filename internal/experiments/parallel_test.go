package experiments

import (
	"bytes"
	"testing"

	"nautilus/internal/telemetry"
)

// renderFig runs a figure and flattens its tables (header, rows, notes) to
// one byte string so parallel and sequential runs can be compared exactly.
func renderFig(t *testing.T, fig func(Config) ([]Table, error), cfg Config) []byte {
	t.Helper()
	tables, err := fig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for i := range tables {
		tables[i].Fprint(&buf)
	}
	return buf.Bytes()
}

// TestFig4ParallelDeterminism asserts the NoC figure's tables are
// byte-identical at Parallelism 1 and 8 - the harness's central guarantee.
func TestFig4ParallelDeterminism(t *testing.T) {
	cfg := fastCfg()
	cfg.Parallelism = 1
	seq := renderFig(t, Fig4, cfg)
	cfg.Parallelism = 8
	par := renderFig(t, Fig4, cfg)
	if !bytes.Equal(seq, par) {
		t.Errorf("fig4 output differs between Parallelism 1 and 8:\n--- seq ---\n%s\n--- par ---\n%s", seq, par)
	}
}

// TestFig6ParallelDeterminism does the same for an FFT figure, which also
// exercises the parallel random-sampling comparison.
func TestFig6ParallelDeterminism(t *testing.T) {
	cfg := fastCfg()
	cfg.Parallelism = 1
	seq := renderFig(t, Fig6, cfg)
	cfg.Parallelism = 8
	par := renderFig(t, Fig6, cfg)
	if !bytes.Equal(seq, par) {
		t.Errorf("fig6 output differs between Parallelism 1 and 8:\n--- seq ---\n%s\n--- par ---\n%s", seq, par)
	}
}

// TestFig2ParallelDeterminism covers the parallel space enumeration path:
// the scatter rows must come back in flat enumeration order.
func TestFig2ParallelDeterminism(t *testing.T) {
	cfg := fastCfg()
	cfg.Parallelism = 1
	seq := renderFig(t, Fig2, cfg)
	cfg.Parallelism = 8
	par := renderFig(t, Fig2, cfg)
	if !bytes.Equal(seq, par) {
		t.Error("fig2 output differs between Parallelism 1 and 8")
	}
}

// TestRecorderDoesNotPerturbFigures asserts a wired Recorder leaves every
// table byte-identical while actually observing the harness's GA trials.
func TestRecorderDoesNotPerturbFigures(t *testing.T) {
	cfg := fastCfg()
	cfg.Parallelism = 4
	plain := renderFig(t, Fig4, cfg)
	col := telemetry.NewCollector(nil)
	cfg.Recorder = col
	recorded := renderFig(t, Fig4, cfg)
	if !bytes.Equal(plain, recorded) {
		t.Errorf("fig4 output differs with a Recorder wired:\n--- plain ---\n%s\n--- recorded ---\n%s", plain, recorded)
	}
	snap := col.Registry().Snapshot()
	if snap.Counters[telemetry.MetricGenerations] == 0 {
		t.Error("recorder saw no generations despite observing a full figure")
	}
	if snap.Counters[telemetry.MetricPoolTasks] == 0 {
		t.Error("recorder saw no pool tasks despite the trial fan-out")
	}
}
