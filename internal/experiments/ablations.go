package experiments

import (
	"fmt"

	"nautilus/internal/core"
	"nautilus/internal/dataset"
	"nautilus/internal/fft"
	"nautilus/internal/ga"
	"nautilus/internal/metrics"
	"nautilus/internal/pool"
	"nautilus/internal/stats"
)

// Ablations studies the design choices DESIGN.md calls out, on the FFT
// min-LUT query:
//
//   - confidence sweep: 0 (baseline-equivalent) to 0.95 (near-directed);
//   - hint classes in isolation: importance-only, bias-only, target-like
//     (full expert), and combined;
//   - importance decay on versus off;
//   - adversarial (sign-flipped) bias hints: the stochastic core must
//     degrade gracefully, not break (the paper's Section 3 requirement).
func Ablations(cfg Config) ([]Table, error) {
	ds, err := fftDataset(cfg.parallelism())
	if err != nil {
		return nil, err
	}
	s := ds.Space()
	obj := metrics.MinimizeMetric(metrics.LUTs)
	_, best := ds.Best(obj)
	relaxed := best * 2
	runs, gens := cfg.runs(40), cfg.generations(80)

	measure := func(name string, g *core.Guidance) ([]string, error) {
		results, err := runGA(s, obj, ds.Evaluator(), g, "ablation", name, runs, gens, cfg.parallelism(), cfg.Recorder)
		if err != nil {
			return nil, err
		}
		r := stats.EvalsToReach(results, obj, relaxed)
		final := stats.Mean(stats.FinalValues(results, obj))
		return []string{name, r.String(), f1(final)}, nil
	}

	header := []string{"variant", "evals to 2x minimum", "mean final LUTs"}

	// Confidence sweep.
	conf := Table{
		Name:   "ablation_confidence",
		Title:  "confidence sweep (FFT min LUTs, full expert hints)",
		Header: header,
		Notes:  []string{"confidence 0 must match baseline behaviour; high confidence approaches directed search"},
	}
	lib := fft.ExpertHints()
	for _, c := range []float64{0, 0.2, 0.4, 0.6, 0.8, 0.95} {
		g, err := lib.GuidanceForObjective(obj, c)
		if err != nil {
			return nil, err
		}
		row, err := measure(fmt.Sprintf("confidence=%.2f", c), g)
		if err != nil {
			return nil, err
		}
		conf.Rows = append(conf.Rows, row)
	}

	// Hint classes.
	classes := Table{
		Name:   "ablation_hint_classes",
		Title:  "hint classes in isolation (FFT min LUTs, confidence 0.9)",
		Header: header,
	}
	{
		row, err := measure("none (baseline)", nil)
		if err != nil {
			return nil, err
		}
		classes.Rows = append(classes.Rows, row)

		impOnly := core.NewLibrary(s)
		impOnly.Metric(metrics.LUTs).
			SetImportance(fft.ParamDataWidth, 90, 0).
			SetImportance(fft.ParamStreamWidth, 80, 0).
			SetImportance(fft.ParamArch, 70, 0)
		gImp, err := impOnly.GuidanceForObjective(obj, StrongConfidence)
		if err != nil {
			return nil, err
		}
		if row, err = measure("importance only", gImp); err != nil {
			return nil, err
		}
		classes.Rows = append(classes.Rows, row)

		gBias, err := fft.BiasOnlyHints(2).GuidanceForObjective(obj, StrongConfidence)
		if err != nil {
			return nil, err
		}
		if row, err = measure("2 bias hints only", gBias); err != nil {
			return nil, err
		}
		classes.Rows = append(classes.Rows, row)

		gFull, err := lib.GuidanceForObjective(obj, StrongConfidence)
		if err != nil {
			return nil, err
		}
		if row, err = measure("full expert hints", gFull); err != nil {
			return nil, err
		}
		classes.Rows = append(classes.Rows, row)
	}

	// Importance decay on/off.
	decay := Table{
		Name:   "ablation_decay",
		Title:  "importance decay (FFT min LUTs, importance-heavy hints, confidence 0.9)",
		Header: header,
		Notes:  []string{"without decay, extreme importance skew can starve late fine-tuning of unhinted parameters"},
	}
	for _, d := range []struct {
		name string
		rate float64
	}{{"decay off", 0}, {"decay 0.05", 0.05}, {"decay 0.15", 0.15}} {
		libD := core.NewLibrary(s)
		libD.Metric(metrics.LUTs).
			SetImportance(fft.ParamDataWidth, 100, d.rate).SetBias(fft.ParamDataWidth, 0.9).
			SetImportance(fft.ParamStreamWidth, 100, d.rate).SetBias(fft.ParamStreamWidth, 0.8)
		g, err := libD.GuidanceForObjective(obj, StrongConfidence)
		if err != nil {
			return nil, err
		}
		row, err := measure(d.name, g)
		if err != nil {
			return nil, err
		}
		decay.Rows = append(decay.Rows, row)
	}

	// Adversarial hints.
	wrong := Table{
		Name:   "ablation_wrong_hints",
		Title:  "adversarial hints (FFT min LUTs): sign-flipped biases",
		Header: header,
		Notes:  []string{"hints are probabilistic, so wrong guidance slows but must not break the search (paper Section 3)"},
	}
	{
		row, err := measure("baseline", nil)
		if err != nil {
			return nil, err
		}
		wrong.Rows = append(wrong.Rows, row)

		libW := core.NewLibrary(s)
		libW.Metric(metrics.LUTs).
			SetBias(fft.ParamDataWidth, -0.9). // backwards on purpose
			SetBias(fft.ParamStreamWidth, -0.8).
			SetBias(fft.ParamArch, -0.7)
		for _, c := range []float64{0.4, 0.9} {
			g, err := libW.GuidanceForObjective(obj, c)
			if err != nil {
				return nil, err
			}
			row, err := measure(fmt.Sprintf("wrong hints, confidence=%.1f", c), g)
			if err != nil {
				return nil, err
			}
			wrong.Rows = append(wrong.Rows, row)
		}
	}

	gaParams, err := gaParamTable(cfg, ds, obj, relaxed)
	if err != nil {
		return nil, err
	}

	tables := []Table{conf, classes, decay, wrong, *gaParams}
	for i := range tables {
		if err := tables[i].writeCSV(cfg.OutDir); err != nil {
			return nil, err
		}
	}
	return tables, nil
}

// gaParamTable sweeps the GA's own knobs (selection scheme, crossover
// operator, population size, mutation rate) on the baseline engine - the
// sensitivity the paper's Section 2 background discusses.
func gaParamTable(cfg Config, ds *dataset.Dataset, obj metrics.Objective, relaxed float64) (*Table, error) {
	s := ds.Space()
	runs, gens := cfg.runs(40), cfg.generations(80)
	t := &Table{
		Name:   "ablation_ga_params",
		Title:  "GA parameter sensitivity (baseline engine, FFT min LUTs)",
		Header: []string{"configuration", "evals to 2x minimum", "mean final LUTs"},
		Notes: []string{
			"paper Section 2: population size caps parallelism; mutation rate balances exploration vs exploitation",
		},
	}
	variants := []struct {
		name string
		mod  func(*ga.Config)
	}{
		{"defaults (pop 10, mut 0.1, roulette, 1-point)", func(*ga.Config) {}},
		{"tournament selection", func(c *ga.Config) { c.Selection = ga.SelectTournament }},
		{"uniform crossover", func(c *ga.Config) { c.Crossover = ga.CrossoverUniform }},
		{"two-point crossover", func(c *ga.Config) { c.Crossover = ga.CrossoverTwoPoint }},
		{"population 30", func(c *ga.Config) { c.PopulationSize = 30 }},
		{"mutation 0.02 (exploit)", func(c *ga.Config) { c.MutationRate = 0.02 }},
		{"mutation 0.4 (explore)", func(c *ga.Config) { c.MutationRate = 0.4 }},
	}
	for _, v := range variants {
		results, err := pool.MapRec(cfg.parallelism(), runs, func(i int) (ga.Result, error) {
			gcfg := ga.Config{Seed: seedFor("ablation_ga", v.name, i), Generations: gens, Recorder: cfg.Recorder}
			v.mod(&gcfg)
			engine, err := ga.New(s, obj, ds.Evaluator(), gcfg, nil)
			if err != nil {
				return ga.Result{}, err
			}
			return engine.Run(), nil
		}, cfg.Recorder)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			v.name,
			stats.EvalsToReach(results, obj, relaxed).String(),
			f1(stats.Mean(stats.FinalValues(results, obj))),
		})
	}
	return t, nil
}
