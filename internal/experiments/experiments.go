// Package experiments reproduces every figure of the Nautilus paper's
// evaluation (Figures 1-7) plus the headline speedup numbers of Section
// 4.2, against this repository's analytical synthesis substrate.
//
// Each experiment returns printable Tables and, when an output directory is
// configured, writes the underlying series as CSV files so the figures can
// be re-plotted. Absolute values differ from the paper (different "fab");
// the reproduced quantity is the shape: which search strategy wins, by
// what factor, and where convergence happens. EXPERIMENTS.md records
// paper-vs-measured for every experiment.
package experiments

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"nautilus/internal/core"
	"nautilus/internal/dataset"
	"nautilus/internal/ga"
	"nautilus/internal/metrics"
	"nautilus/internal/param"
	"nautilus/internal/pool"
	"nautilus/internal/synth"
	"nautilus/internal/telemetry"
)

// Config scales the experiments. The zero value reproduces the paper's
// setup; tests and benchmarks shrink Runs/Generations for speed.
type Config struct {
	// Runs is the number of GA runs averaged per search variant
	// (default: the per-figure paper value - 40, or 20 for Figure 3).
	Runs int
	// Generations overrides the GA generation count (default: per-figure
	// paper value - 80, or 20 for Figure 5).
	Generations int
	// Parallelism bounds each fan-out level of the harness - concurrent
	// figures, variants within a figure, GA trials within a variant, and
	// design-space enumeration shards (default: runtime.GOMAXPROCS(0)).
	// Every trial derives its seed from (experiment, variant, run) and
	// results are collected by index, so all tables are byte-identical at
	// any parallelism level, including 1.
	Parallelism int
	// OutDir, when non-empty, receives CSV files per figure.
	OutDir string
	// Recorder, when non-nil, observes every GA trial and harness fan-out:
	// generations, evaluations, cache traffic, hint applications, and pool
	// occupancy aggregate across all figures into one stream. It must be
	// safe for concurrent use (trials run concurrently, so per-run event
	// streams interleave); recording never changes any table.
	Recorder telemetry.Recorder
}

func (c Config) runs(paperDefault int) int {
	if c.Runs > 0 {
		return c.Runs
	}
	return paperDefault
}

func (c Config) generations(paperDefault int) int {
	if c.Generations > 0 {
		return c.Generations
	}
	return paperDefault
}

func (c Config) parallelism() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Confidence levels for the paper's guidance variants: the strongly and
// weakly guided configurations "differ only in the confidence hint".
const (
	WeakConfidence   = 0.4
	StrongConfidence = 0.9
)

// Table is one printable experiment result.
type Table struct {
	// Name is the experiment identifier, e.g. "fig4".
	Name string
	// Title describes the table.
	Title string
	// Header holds column names; Rows the cell values.
	Header []string
	Rows   [][]string
	// Notes carry paper-reference annotations printed under the table.
	Notes []string
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.Name, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// writeCSV writes the table's header+rows as OutDir/<name>.csv.
func (t *Table) writeCSV(dir string) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, t.Name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintln(f, strings.Join(t.Header, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(f, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return f.Close()
}

// seedFor derives a deterministic seed per experiment, variant, and run.
func seedFor(experiment, variant string, run int) int64 {
	return int64(synth.Hash64(experiment, variant, fmt.Sprint(run)) & 0x7fffffff)
}

// runGA performs `runs` independent GA searches on up to par workers and
// collects the results in run order. Each run's seed depends only on
// (experiment, variant, run), so the result set is identical at any par.
func runGA(space *param.Space, obj metrics.Objective, eval dataset.Evaluator,
	g *core.Guidance, experiment, variant string, runs, generations, par int,
	rec telemetry.Recorder) ([]ga.Result, error) {
	return pool.MapRec(par, runs, func(i int) (ga.Result, error) {
		cfg := ga.Config{Seed: seedFor(experiment, variant, i), Generations: generations, Recorder: rec}
		res, err := core.Search(context.Background(), core.SearchRequest{
			Space:     space,
			Objective: obj,
			Evaluate:  eval,
			Config:    cfg,
		}, core.WithGuidance(g))
		if err != nil {
			return ga.Result{}, fmt.Errorf("%s/%s run %d: %w", experiment, variant, i, err)
		}
		return res, nil
	}, rec)
}

// variantSpec names one guidance configuration of a figure.
type variantSpec struct {
	name string
	g    *core.Guidance
}

// runVariants fans a figure's search variants out concurrently; within each
// variant the trials fan out again. The per-variant result sets come back
// in the order the variants were given.
func runVariants(cfg Config, space *param.Space, obj metrics.Objective, eval dataset.Evaluator,
	experiment string, runs, generations int, vs ...variantSpec) ([][]ga.Result, error) {
	par := cfg.parallelism()
	return pool.MapRec(par, len(vs), func(i int) ([]ga.Result, error) {
		return runGA(space, obj, eval, vs[i].g, experiment, vs[i].name, runs, generations, par, cfg.Recorder)
	}, cfg.Recorder)
}

// f renders a float compactly for table cells.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func fi(v int) string     { return fmt.Sprintf("%d", v) }

// ratio formats a/b, guarding division by zero.
func ratio(a, b float64) string {
	if b == 0 || a != a || b != b { // NaN-safe
		return "n/a"
	}
	return fmt.Sprintf("%.1fx", a/b)
}

// All runs every experiment concurrently and returns the tables in figure
// order. The figures sharing a memoized dataset simply block on its one
// build; everything else proceeds independently.
func All(cfg Config) ([]Table, error) {
	figs := []func(Config) ([]Table, error){
		Fig1, Fig2, Fig3, Fig4, Fig5, Fig6, Fig7, Headline, Ablations,
		ExtensionBaselines, ExtensionPareto, ExtensionSimVsAnalytical, ExtensionThirdIP,
	}
	per, err := pool.MapRec(cfg.parallelism(), len(figs), func(i int) ([]Table, error) {
		return figs[i](cfg)
	}, cfg.Recorder)
	if err != nil {
		return nil, err
	}
	var tables []Table
	for _, ts := range per {
		tables = append(tables, ts...)
	}
	return tables, nil
}
