package experiments

import (
	"fmt"
	"sync"

	"nautilus/internal/core"
	"nautilus/internal/dataset"
	"nautilus/internal/ga"
	"nautilus/internal/hintcal"
	"nautilus/internal/metrics"
	"nautilus/internal/noc"
	"nautilus/internal/param"
	"nautilus/internal/pool"
	"nautilus/internal/stats"
)

var (
	routerOnce sync.Once
	routerDS   *dataset.Dataset
	routerErr  error

	routerHintsOnce sync.Once
	routerHints     *core.Library
	routerHintsErr  error
)

// routerDataset enumerates and characterizes the full ~28k-point router
// space once per process - the stand-in for the paper's offline cluster
// characterization. The first caller's parallelism level drives the build;
// the result is identical at any level.
func routerDataset(par int) (*dataset.Dataset, error) {
	routerOnce.Do(func() {
		s := noc.RouterSpace()
		routerDS, routerErr = dataset.BuildParallel(s, func(pt param.Point) (metrics.Metrics, error) {
			return noc.RouterEvaluate(s, pt)
		}, par)
	})
	return routerDS, routerErr
}

// routerHintLibrary estimates the paper's non-expert NoC hints: ~80
// synthesized designs (<0.3% of the space) swept per-parameter, exactly the
// procedure Section 4.1 describes.
func routerHintLibrary(par int) (*core.Library, error) {
	routerHintsOnce.Do(func() {
		ds, err := routerDataset(par)
		if err != nil {
			routerHintsErr = err
			return
		}
		routerHints, _, routerHintsErr = hintcal.Estimate(
			ds.Space(), ds.Evaluator(),
			[]string{metrics.FmaxMHz, metrics.LUTs},
			hintcal.Options{Budget: 80, Seed: 5},
		)
	})
	return routerHints, routerHintsErr
}

// Fig1 reproduces the paper's Figure 1: the LUT-vs-frequency landscape of
// ~30,000 functionally interchangeable VC router design points. The paper
// plots the raw scatter; the table reports its envelope, and the full
// scatter is written to fig1_scatter.csv when an output directory is set.
func Fig1(cfg Config) ([]Table, error) {
	ds, err := routerDataset(cfg.parallelism())
	if err != nil {
		return nil, err
	}
	var luts, fmax []float64
	scatter := Table{
		Name:   "fig1_scatter",
		Title:  "router design points (LUTs, Fmax)",
		Header: []string{"luts", "fmax_mhz"},
	}
	ds.Each(func(pt param.Point, m metrics.Metrics) bool {
		l, _ := m.Get(metrics.LUTs)
		fx, _ := m.Get(metrics.FmaxMHz)
		luts = append(luts, l)
		fmax = append(fmax, fx)
		scatter.Rows = append(scatter.Rows, []string{f1(l), f1(fx)})
		return true
	})
	sl, sf := stats.Summarize(luts), stats.Summarize(fmax)
	t := Table{
		Name:   "fig1",
		Title:  "VC router design-space landscape (paper Figure 1)",
		Header: []string{"metric", "points", "min", "median", "p95", "max"},
		Rows: [][]string{
			{"area (LUTs)", fi(sl.N), f1(sl.Min), f1(sl.Median), f1(stats.Quantile(luts, 0.95)), f1(sl.Max)},
			{"frequency (MHz)", fi(sf.N), f1(sf.Min), f1(sf.Median), f1(stats.Quantile(fmax, 0.95)), f1(sf.Max)},
		},
		Notes: []string{
			"paper: ~30,000 points spanning roughly 60-200 MHz and up to >20,000 LUTs",
			fmt.Sprintf("measured: %d points (9 parameters varied), full scatter in fig1_scatter.csv", sl.N),
		},
	}
	if cfg.OutDir != "" {
		if err := scatter.writeCSV(cfg.OutDir); err != nil {
			return nil, err
		}
	}
	if err := t.writeCSV(cfg.OutDir); err != nil {
		return nil, err
	}
	return []Table{t}, nil
}

// Fig2 reproduces the paper's Figure 2: area, power, and peak bisection
// bandwidth of 64-endpoint CONNECT-style NoCs across eight topology
// families on the 65nm ASIC model, demonstrating the 2-3 orders of
// magnitude spread among functionally interchangeable networks.
func Fig2(cfg Config) ([]Table, error) {
	s := noc.NetworkSpace()
	type agg struct {
		n          int
		minA, maxA float64
		minP, maxP float64
		minB, maxB float64
	}
	fams := map[string]*agg{}
	scatter := Table{
		Name:   "fig2_scatter",
		Title:  "network design points",
		Header: []string{"topology", "area_mm2", "power_mw", "bisection_gbps"},
	}
	// Characterize all points concurrently, then aggregate in flat
	// enumeration order so the scatter and family rows stay byte-identical
	// to a sequential sweep.
	points := int(s.Cardinality())
	evals, err := pool.MapRec(cfg.parallelism(), points, func(i int) (metrics.Metrics, error) {
		return noc.NetworkEvaluate(s, s.PointAt(uint64(i)))
	}, cfg.Recorder)
	if err != nil {
		return nil, err
	}
	for i, m := range evals {
		pt := s.PointAt(uint64(i))
		n := noc.DecodeNetwork(s, pt)
		a := fams[n.Topology]
		if a == nil {
			a = &agg{minA: 1e300, minP: 1e300, minB: 1e300}
			fams[n.Topology] = a
		}
		area, _ := m.Get(metrics.AreaMM2)
		power, _ := m.Get(metrics.PowerMW)
		bw, _ := m.Get(metrics.BisectionGbps)
		a.n++
		a.minA, a.maxA = minf(a.minA, area), maxf(a.maxA, area)
		a.minP, a.maxP = minf(a.minP, power), maxf(a.maxP, power)
		a.minB, a.maxB = minf(a.minB, bw), maxf(a.maxB, bw)
		scatter.Rows = append(scatter.Rows, []string{n.Topology, f2(area), f1(power), f1(bw)})
	}
	t := Table{
		Name:  "fig2",
		Title: "64-endpoint NoC landscape at 65nm by topology family (paper Figure 2)",
		Header: []string{"topology", "configs", "area mm2 (min..max)", "power mW (min..max)",
			"bisection Gbps (min..max)"},
		Notes: []string{
			"paper: families span 2-3 orders of magnitude in area, power, and bandwidth",
		},
	}
	var globalMinB, globalMaxB = 1e300, 0.0
	for _, topo := range noc.Topologies {
		a := fams[topo]
		if a == nil {
			continue
		}
		globalMinB, globalMaxB = minf(globalMinB, a.minB), maxf(globalMaxB, a.maxB)
		t.Rows = append(t.Rows, []string{
			topo, fi(a.n),
			f2(a.minA) + ".." + f2(a.maxA),
			f1(a.minP) + ".." + f1(a.maxP),
			f1(a.minB) + ".." + f1(a.maxB),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("measured bandwidth spread across families: %.0fx", globalMaxB/globalMinB))
	if cfg.OutDir != "" {
		if err := scatter.writeCSV(cfg.OutDir); err != nil {
			return nil, err
		}
	}
	if err := t.writeCSV(cfg.OutDir); err != nil {
		return nil, err
	}
	return []Table{t}, nil
}

// Fig4 reproduces the paper's Figure 4: maximizing router frequency with a
// baseline GA versus weakly and strongly guided Nautilus, where the NoC
// hints are non-expert estimates from ~80 synthesized designs. The paper
// reports the baseline needing about 2.8x (vs strong) and 1.8x (vs weak)
// the synthesis jobs to come within 1% of the best solution.
func Fig4(cfg Config) ([]Table, error) {
	ds, err := routerDataset(cfg.parallelism())
	if err != nil {
		return nil, err
	}
	lib, err := routerHintLibrary(cfg.parallelism())
	if err != nil {
		return nil, err
	}
	obj := metrics.MaximizeMetric(metrics.FmaxMHz)
	strong, err := lib.GuidanceForObjective(obj, StrongConfidence)
	if err != nil {
		return nil, err
	}
	weak := strong.WithConfidence(WeakConfidence)

	runs, gens := cfg.runs(40), cfg.generations(80)
	s := ds.Space()
	vres, err := runVariants(cfg, s, obj, ds.Evaluator(), "fig4", runs, gens,
		variantSpec{"baseline", nil}, variantSpec{"weak", weak}, variantSpec{"strong", strong})
	if err != nil {
		return nil, err
	}
	base, wk, st := vres[0], vres[1], vres[2]

	_, best := ds.Best(obj)
	target := best * 0.99
	rb := stats.EvalsToReach(base, obj, target)
	rw := stats.EvalsToReach(wk, obj, target)
	rs := stats.EvalsToReach(st, obj, target)

	// The paper's convergence comparison: evaluations needed to match the
	// quality the baseline ends its 80 generations with.
	baseFinal := stats.Mean(stats.FinalValues(base, obj))
	mb := stats.EvalsToReach(base, obj, baseFinal)
	mw := stats.EvalsToReach(wk, obj, baseFinal)
	ms := stats.EvalsToReach(st, obj, baseFinal)

	curve := curveTable("fig4_curve", "best Fmax (MHz) vs designs evaluated",
		obj, base, wk, st, 400)
	t := Table{
		Name:  "fig4",
		Title: "NoC: maximize frequency (paper Figure 4, non-expert hints)",
		Header: []string{"variant", "evals to within 1% of best", "runs reached",
			"evals to baseline-final quality", "mean total evals", "mean final MHz"},
		Rows: [][]string{
			{"baseline", f1(rb.MeanEvals), fmt.Sprintf("%d/%d", rb.Reached, rb.Total),
				mb.String(), f1(stats.MeanDistinctEvals(base)), f1(baseFinal)},
			{"nautilus-weak", f1(rw.MeanEvals), fmt.Sprintf("%d/%d", rw.Reached, rw.Total),
				mw.String(), f1(stats.MeanDistinctEvals(wk)), f1(stats.Mean(stats.FinalValues(wk, obj)))},
			{"nautilus-strong", f1(rs.MeanEvals), fmt.Sprintf("%d/%d", rs.Reached, rs.Total),
				ms.String(), f1(stats.MeanDistinctEvals(st)), f1(stats.Mean(stats.FinalValues(st, obj)))},
		},
		Notes: []string{
			fmt.Sprintf("best design: %.1f MHz; 1%% target: %.1f MHz; baseline-final quality: %.1f MHz",
				best, target, baseFinal),
			fmt.Sprintf("to baseline-final quality - baseline/strong: %s, baseline/weak: %s (paper: ~2.8x / ~1.8x)",
				ratio(mb.MeanEvals, ms.MeanEvals), ratio(mb.MeanEvals, mw.MeanEvals)),
		},
	}
	if cfg.OutDir != "" {
		if err := curve.writeCSV(cfg.OutDir); err != nil {
			return nil, err
		}
	}
	if err := t.writeCSV(cfg.OutDir); err != nil {
		return nil, err
	}
	return []Table{t, curve}, nil
}

// Fig5 reproduces the paper's Figure 5: minimizing the router's area-delay
// product (clock period x LUTs) over 20 generations. This composite query
// merges the frequency hints with the area hints (importance and bias of
// buffer depth and friends), as the paper describes; Nautilus reaches the
// baseline's quality with roughly half the synthesis runs.
func Fig5(cfg Config) ([]Table, error) {
	ds, err := routerDataset(cfg.parallelism())
	if err != nil {
		return nil, err
	}
	lib, err := routerHintLibrary(cfg.parallelism())
	if err != nil {
		return nil, err
	}
	obj := metrics.AreaDelayProduct()
	// Area-delay rises with LUTs and falls with Fmax, so the compiled
	// guidance weights LUT hints positively and frequency hints negatively.
	guid, err := lib.Guidance(metrics.Minimize, map[string]float64{
		metrics.LUTs:    1,
		metrics.FmaxMHz: -1,
	}, 0.7)
	if err != nil {
		return nil, err
	}

	runs, gens := cfg.runs(40), cfg.generations(20)
	s := ds.Space()
	rs, err := runVariants(cfg, s, obj, ds.Evaluator(), "fig5", runs, gens,
		variantSpec{"baseline", nil}, variantSpec{"nautilus", guid})
	if err != nil {
		return nil, err
	}
	base, naut := rs[0], rs[1]

	_, best := ds.Best(obj)
	// With only 20 generations (the paper's Figure 5 budget), quality is
	// compared at the baseline's final level: Nautilus should get there
	// with roughly half the synthesis runs.
	baseFinal := stats.Mean(stats.FinalValues(base, obj))
	rb := stats.EvalsToReach(base, obj, baseFinal)
	rn := stats.EvalsToReach(naut, obj, baseFinal)
	curve := curveTable("fig5_curve", "best area-delay product vs designs evaluated",
		obj, base, naut, nil, 100)
	t := Table{
		Name:  "fig5",
		Title: "NoC: minimize area-delay product (paper Figure 5)",
		Header: []string{"variant", "evals to baseline-final quality", "runs reached",
			"mean total evals", "mean final ADP"},
		Rows: [][]string{
			{"baseline", f1(rb.MeanEvals), fmt.Sprintf("%d/%d", rb.Reached, rb.Total),
				f1(stats.MeanDistinctEvals(base)), f1(baseFinal)},
			{"nautilus", f1(rn.MeanEvals), fmt.Sprintf("%d/%d", rn.Reached, rn.Total),
				f1(stats.MeanDistinctEvals(naut)), f1(stats.Mean(stats.FinalValues(naut, obj)))},
		},
		Notes: []string{
			fmt.Sprintf("best ADP in space: %.1f (period ns x LUTs); baseline-final quality: %.1f", best, baseFinal),
			fmt.Sprintf("baseline/nautilus evals ratio: %s (paper: ~2x - 'about half the synthesis runs')",
				ratio(rb.MeanEvals, rn.MeanEvals)),
		},
	}
	if cfg.OutDir != "" {
		if err := curve.writeCSV(cfg.OutDir); err != nil {
			return nil, err
		}
	}
	if err := t.writeCSV(cfg.OutDir); err != nil {
		return nil, err
	}
	return []Table{t, curve}, nil
}

// curveTable resamples up to three run sets onto a shared evaluation grid.
// The third set may be nil (two-line figures).
func curveTable(name, title string, obj metrics.Objective, a, b, c []ga.Result, maxEvals int) Table {
	grid := stats.EvalGrid(maxEvals, 40)
	ca := stats.AverageTrajectories(a, obj, grid)
	cb := stats.AverageTrajectories(b, obj, grid)
	var cc stats.Curve
	header := []string{"evals", "baseline", "nautilus_weak", "nautilus_strong"}
	if c == nil {
		header = []string{"evals", "baseline", "nautilus"}
	} else {
		cc = stats.AverageTrajectories(c, obj, grid)
	}
	t := Table{Name: name, Title: title, Header: header}
	at := func(curve stats.Curve, x int) string {
		for _, cp := range curve {
			if cp.X == x {
				return f3(cp.Y)
			}
		}
		return ""
	}
	for _, x := range grid {
		row := []string{fi(x), at(ca, x), at(cb, x)}
		if c != nil {
			row = append(row, at(cc, x))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
