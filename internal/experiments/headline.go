package experiments

import (
	"fmt"

	"nautilus/internal/fft"
	"nautilus/internal/metrics"
	"nautilus/internal/stats"
)

// Headline reproduces the paper's Section 4.2 summary: the factor by which
// the baseline GA's synthesis-job count exceeds Nautilus's for the same
// quality of results, across all four search queries.
func Headline(cfg Config) ([]Table, error) {
	t := Table{
		Name:  "headline",
		Title: "baseline-vs-Nautilus synthesis-job ratios (paper Section 4.2)",
		Header: []string{"query", "quality target", "baseline evals (95% CI)",
			"nautilus evals (95% CI)", "ratio", "paper ratio"},
	}

	// NoC: maximize frequency (Figure 4 query, strong guidance).
	{
		ds, err := routerDataset(cfg.parallelism())
		if err != nil {
			return nil, err
		}
		lib, err := routerHintLibrary(cfg.parallelism())
		if err != nil {
			return nil, err
		}
		obj := metrics.MaximizeMetric(metrics.FmaxMHz)
		strong, err := lib.GuidanceForObjective(obj, StrongConfidence)
		if err != nil {
			return nil, err
		}
		weak := strong.WithConfidence(WeakConfidence)
		runs, gens := cfg.runs(40), cfg.generations(80)
		vres, err := runVariants(cfg, ds.Space(), obj, ds.Evaluator(), "headline_noc", runs, gens,
			variantSpec{"baseline", nil}, variantSpec{"strong", strong}, variantSpec{"weak", weak})
		if err != nil {
			return nil, err
		}
		base, st, wk := vres[0], vres[1], vres[2]
		_, best := ds.Best(obj)
		rb, cb := stats.ReachCI(base, obj, best*0.99, 1)
		rs, cs := stats.ReachCI(st, obj, best*0.99, 2)
		rw, cw := stats.ReachCI(wk, obj, best*0.99, 3)
		t.Rows = append(t.Rows,
			[]string{"NoC max frequency (strong)", "within 1% of best",
				cb.String(), cs.String(), ratio(rb.MeanEvals, rs.MeanEvals), "2.8x"},
			[]string{"NoC max frequency (weak)", "within 1% of best",
				cb.String(), cw.String(), ratio(rb.MeanEvals, rw.MeanEvals), "1.8x"},
		)
	}

	// FFT: minimize LUTs and maximize throughput/LUT (Figures 6-7 queries).
	{
		ds, err := fftDataset(cfg.parallelism())
		if err != nil {
			return nil, err
		}
		lib := fft.ExpertHints()
		runs, gens := cfg.runs(40), cfg.generations(80)

		objL := metrics.MinimizeMetric(metrics.LUTs)
		strongL, err := lib.GuidanceForObjective(objL, StrongConfidence)
		if err != nil {
			return nil, err
		}
		vresL, err := runVariants(cfg, ds.Space(), objL, ds.Evaluator(), "headline_fft_luts", runs, gens,
			variantSpec{"baseline", nil}, variantSpec{"strong", strongL})
		if err != nil {
			return nil, err
		}
		baseL, stL := vresL[0], vresL[1]
		_, bestL := ds.Best(objL)
		rbOpt, cbOpt := stats.ReachCI(baseL, objL, bestL*1.005, 4)
		rsOpt, csOpt := stats.ReachCI(stL, objL, bestL*1.005, 5)
		rbRel, cbRel := stats.ReachCI(baseL, objL, bestL*2, 6)
		rsRel, csRel := stats.ReachCI(stL, objL, bestL*2, 7)
		t.Rows = append(t.Rows,
			[]string{"FFT min LUTs (strong)", "optimum",
				cbOpt.String(), csOpt.String(), ratio(rbOpt.MeanEvals, rsOpt.MeanEvals), "4.6x"},
			[]string{"FFT min LUTs (strong)", "2x minimum",
				cbRel.String(), csRel.String(), ratio(rbRel.MeanEvals, rsRel.MeanEvals), "3.3x"},
		)

		objT := metrics.ThroughputPerLUT()
		strongT, err := lib.Guidance(metrics.Maximize, map[string]float64{"throughput_per_lut": 1}, StrongConfidence)
		if err != nil {
			return nil, err
		}
		vresT, err := runVariants(cfg, ds.Space(), objT, ds.Evaluator(), "headline_fft_tpl", runs, gens,
			variantSpec{"baseline", nil}, variantSpec{"strong", strongT})
		if err != nil {
			return nil, err
		}
		baseT, stT := vresT[0], vresT[1]
		_, bestT := ds.Best(objT)
		rbT, cbT := stats.ReachCI(baseT, objT, bestT*0.95, 8)
		rsT, csT := stats.ReachCI(stT, objT, bestT*0.95, 9)
		t.Rows = append(t.Rows,
			[]string{"FFT max throughput/LUT (strong)", "95% of best",
				cbT.String(), csT.String(), ratio(rbT.MeanEvals, rsT.MeanEvals), ">8x"},
		)
	}

	t.Notes = append(t.Notes,
		"paper headline: Nautilus reaches the same quality with up to an order of magnitude fewer evaluations",
		fmt.Sprintf("runs per variant: %d; generations: %d", cfg.runs(40), cfg.generations(80)))
	if err := t.writeCSV(cfg.OutDir); err != nil {
		return nil, err
	}
	return []Table{t}, nil
}
