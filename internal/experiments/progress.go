package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"

	"nautilus/internal/resilience"
)

// Driver regenerates one figure (or figure group) of the paper.
type Driver func(Config) ([]Table, error)

// figureDrivers lists every individually runnable experiment in paper
// order. "all" is not in this list - it is the whole list.
var figureDrivers = []struct {
	name string
	fn   Driver
}{
	{"fig1", Fig1},
	{"fig2", Fig2},
	{"fig3", Fig3},
	{"fig4", Fig4},
	{"fig5", Fig5},
	{"fig6", Fig6},
	{"fig7", Fig7},
	{"headline", Headline},
	{"ablations", Ablations},
	{"ext-baselines", ExtensionBaselines},
	{"ext-pareto", ExtensionPareto},
	{"ext-sim-validate", ExtensionSimVsAnalytical},
	{"ext-thirdip", ExtensionThirdIP},
}

// FigureNames returns every individually runnable experiment name in paper
// order (excluding the "all" meta-driver).
func FigureNames() []string {
	names := make([]string, len(figureDrivers))
	for i, d := range figureDrivers {
		names[i] = d.name
	}
	return names
}

// FindDriver resolves an experiment name ("all" or any FigureNames entry).
func FindDriver(name string) (Driver, bool) {
	if name == "all" {
		return All, true
	}
	for _, d := range figureDrivers {
		if d.name == name {
			return d.fn, true
		}
	}
	return nil, false
}

// progressVersion is the on-disk schema version of a Progress file.
const progressVersion = 1

// progressJSON is the serialized form of a Progress file: the scale
// parameters the tables depend on, plus every completed figure's tables.
type progressJSON struct {
	Version     int                `json:"version"`
	Runs        int                `json:"runs"`
	Generations int                `json:"generations"`
	Figures     map[string][]Table `json:"figures"`
}

// Progress checkpoints an experiments run at figure granularity: after each
// figure completes, its tables are persisted (atomic rename), so a killed
// run resumes by replaying completed figures from the file and recomputing
// only the rest. Tables are deterministic per (figure, Runs, Generations),
// so a resumed run's output is identical to an uninterrupted one at any
// parallelism; the file rejects resumption under different scale settings.
type Progress struct {
	path string

	mu      sync.Mutex
	state   progressJSON
	every   int // persist after every N Records (default 1)
	pending int // Records since the last persist
}

// NewProgress creates an empty progress tracker writing to path.
func NewProgress(path string, cfg Config) *Progress {
	return &Progress{
		path: path,
		state: progressJSON{
			Version:     progressVersion,
			Runs:        cfg.Runs,
			Generations: cfg.Generations,
			Figures:     make(map[string][]Table),
		},
	}
}

// LoadProgress reads a progress file written by a previous run and
// validates that its scale settings match cfg; completed figures whose
// tables it holds will be skipped. A missing file is not an error - it
// returns a fresh tracker, so resume flags are safe on first runs.
func LoadProgress(path string, cfg Config) (*Progress, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return NewProgress(path, cfg), nil
	}
	if err != nil {
		return nil, fmt.Errorf("read progress: %w", err)
	}
	var state progressJSON
	if err := json.Unmarshal(data, &state); err != nil {
		return nil, fmt.Errorf("decode progress %s: %w", path, err)
	}
	if state.Version != progressVersion {
		return nil, fmt.Errorf("progress %s has schema version %d, this build reads %d",
			path, state.Version, progressVersion)
	}
	if state.Runs != cfg.Runs || state.Generations != cfg.Generations {
		return nil, fmt.Errorf("progress %s was taken with -runs %d -gens %d, run configured with -runs %d -gens %d",
			path, state.Runs, state.Generations, cfg.Runs, cfg.Generations)
	}
	if state.Figures == nil {
		state.Figures = make(map[string][]Table)
	}
	return &Progress{path: path, state: state}, nil
}

// Completed returns the stored tables for a figure, if it already ran.
func (p *Progress) Completed(name string) ([]Table, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ts, ok := p.state.Figures[name]
	return ts, ok
}

// CompletedCount reports how many figures the tracker holds.
func (p *Progress) CompletedCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.state.Figures)
}

// SetSaveEvery persists the file only after every n Records instead of
// each one (a crash then re-runs at most n figures); Flush covers the
// remainder. Values below 1 mean every Record.
func (p *Progress) SetSaveEvery(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n < 1 {
		n = 1
	}
	p.every = n
}

// Record stores a completed figure's tables and persists the file
// atomically (subject to SetSaveEvery), so a crash between figures never
// loses completed work.
func (p *Progress) Record(name string, tables []Table) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if tables == nil {
		tables = []Table{}
	}
	p.state.Figures[name] = tables
	p.pending++
	if p.every > 1 && p.pending < p.every {
		return nil
	}
	return p.persistLocked()
}

// Flush persists any Records held back by SetSaveEvery.
func (p *Progress) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.pending == 0 {
		return nil
	}
	return p.persistLocked()
}

func (p *Progress) persistLocked() error {
	data, err := json.MarshalIndent(&p.state, "", " ")
	if err != nil {
		return fmt.Errorf("encode progress: %w", err)
	}
	if err := resilience.WriteFileAtomic(p.path, data); err != nil {
		return fmt.Errorf("write progress %s: %w", p.path, err)
	}
	p.pending = 0
	return nil
}

// RunResumable runs the named figures in order, skipping any the tracker
// already holds and recording each as it completes. Canceling ctx stops
// before the next figure starts (the in-flight figure finishes and is
// recorded); the error then wraps context.Canceled and the caller decides
// the exit path. A nil prog degrades to plain sequential execution.
//
// Figures run sequentially here - resumability is the point; the fan-out
// inside each figure still uses cfg's full parallelism.
func RunResumable(ctx context.Context, cfg Config, names []string, prog *Progress) ([]Table, error) {
	var tables []Table
	for _, name := range names {
		if prog != nil {
			if ts, ok := prog.Completed(name); ok {
				tables = append(tables, ts...)
				continue
			}
		}
		if err := ctx.Err(); err != nil {
			if prog != nil {
				if ferr := prog.Flush(); ferr != nil {
					return tables, ferr
				}
			}
			return tables, fmt.Errorf("interrupted before %s: %w", name, err)
		}
		driver, ok := FindDriver(name)
		if !ok || name == "all" {
			return tables, fmt.Errorf("unknown figure %q", name)
		}
		ts, err := driver(cfg)
		if err != nil {
			return tables, err
		}
		if prog != nil {
			if err := prog.Record(name, ts); err != nil {
				return tables, err
			}
		}
		tables = append(tables, ts...)
	}
	if prog != nil {
		if err := prog.Flush(); err != nil {
			return tables, err
		}
	}
	return tables, nil
}
