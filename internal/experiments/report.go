package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// WriteMarkdown renders a set of experiment tables as a self-contained
// markdown report (the machine-written companion to EXPERIMENTS.md).
// generatedAt stamps the header; pass a fixed value for reproducible
// output.
func WriteMarkdown(w io.Writer, tables []Table, generatedAt time.Time) error {
	if _, err := fmt.Fprintf(w, "# Nautilus experiment report\n\nGenerated %s.\n\n",
		generatedAt.Format("2006-01-02 15:04:05 MST")); err != nil {
		return err
	}
	for i := range tables {
		t := &tables[i]
		if _, err := fmt.Fprintf(w, "## %s — %s\n\n", t.Name, t.Title); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(escapeCells(t.Header), " | ")); err != nil {
			return err
		}
		seps := make([]string, len(t.Header))
		for j := range seps {
			seps[j] = "---"
		}
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | ")); err != nil {
			return err
		}
		for _, row := range t.Rows {
			if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(escapeCells(row), " | ")); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
		for _, n := range t.Notes {
			if _, err := fmt.Fprintf(w, "> %s\n", n); err != nil {
				return err
			}
		}
		if len(t.Notes) > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
	}
	return nil
}

// escapeCells protects markdown table syntax inside cell values.
func escapeCells(cells []string) []string {
	out := make([]string, len(cells))
	for i, c := range cells {
		out[i] = strings.ReplaceAll(c, "|", "\\|")
	}
	return out
}
