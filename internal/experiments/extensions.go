package experiments

import (
	"fmt"

	"nautilus/internal/core"
	"nautilus/internal/dataset"
	"nautilus/internal/fft"
	"nautilus/internal/ga"
	"nautilus/internal/gemm"
	"nautilus/internal/metrics"
	"nautilus/internal/netsim"
	"nautilus/internal/noc"
	"nautilus/internal/param"
	"nautilus/internal/pareto"
	"nautilus/internal/pool"
	"nautilus/internal/search"
	"nautilus/internal/stats"
)

// ExtensionBaselines compares Nautilus against the broader family of
// search baselines the paper's related-work section situates it among:
// uniform random sampling, greedy hill climbing, and simulated annealing,
// alongside the baseline GA - all under the same distinct-evaluation cost
// accounting, on the FFT minimize-LUTs query.
func ExtensionBaselines(cfg Config) ([]Table, error) {
	ds, err := fftDataset(cfg.parallelism())
	if err != nil {
		return nil, err
	}
	s := ds.Space()
	obj := metrics.MinimizeMetric(metrics.LUTs)
	_, best := ds.Best(obj)
	relaxed := best * 2
	runs := cfg.runs(40)
	gens := cfg.generations(80)
	budget := 500

	collect := func(variant string, run func(seed int64) (ga.Result, error)) ([]ga.Result, error) {
		return pool.MapRec(cfg.parallelism(), runs, func(i int) (ga.Result, error) {
			return run(seedFor("ext_baselines", variant, i))
		}, cfg.Recorder)
	}

	random, err := collect("random", func(seed int64) (ga.Result, error) {
		return search.Random(s, obj, ds.Evaluator(), budget, seed)
	})
	if err != nil {
		return nil, err
	}
	climb, err := collect("hillclimb", func(seed int64) (ga.Result, error) {
		return search.HillClimb(s, obj, ds.Evaluator(), budget, seed)
	})
	if err != nil {
		return nil, err
	}
	annealed, err := collect("anneal", func(seed int64) (ga.Result, error) {
		return search.Anneal(s, obj, ds.Evaluator(), search.AnnealConfig{Budget: budget, Seed: seed})
	})
	if err != nil {
		return nil, err
	}
	strongG, err := fft.ExpertHints().GuidanceForObjective(obj, StrongConfidence)
	if err != nil {
		return nil, err
	}
	rs, err := runVariants(cfg, s, obj, ds.Evaluator(), "ext_baselines", runs, gens,
		variantSpec{"ga", nil}, variantSpec{"nautilus", strongG})
	if err != nil {
		return nil, err
	}
	base, naut := rs[0], rs[1]

	row := func(name string, results []ga.Result) []string {
		return []string{
			name,
			stats.EvalsToReach(results, obj, relaxed).String(),
			f1(stats.Mean(stats.FinalValues(results, obj))),
			f1(stats.MeanDistinctEvals(results)),
		}
	}
	t := Table{
		Name:   "ext_baselines",
		Title:  "extension: Nautilus vs the wider metaheuristic family (FFT min LUTs)",
		Header: []string{"method", "evals to 2x minimum", "mean final LUTs", "mean total evals"},
		Rows: [][]string{
			row("random sampling", random),
			row("hill climbing", climb),
			row("simulated annealing", annealed),
			row("baseline GA", base),
			row("nautilus (strong)", naut),
		},
		Notes: []string{
			fmt.Sprintf("optimum %.0f LUTs; relaxed goal %.0f; random/hill/anneal budget %d evals", best, relaxed, budget),
		},
	}
	if err := t.writeCSV(cfg.OutDir); err != nil {
		return nil, err
	}
	return []Table{t}, nil
}

// ExtensionPareto examines the FFT space's area-throughput Pareto front
// (the object the related-work active-learning systems model) and measures
// how close Nautilus's single-query answers land to it.
func ExtensionPareto(cfg Config) ([]Table, error) {
	ds, err := fftDataset(cfg.parallelism())
	if err != nil {
		return nil, err
	}
	s := ds.Space()
	objs := []metrics.Objective{
		metrics.MinimizeMetric(metrics.LUTs),
		metrics.MaximizeMetric(metrics.ThroughputMSPS),
	}
	front, err := pareto.Front(ds, objs)
	if err != nil {
		return nil, err
	}
	worstLUTs := ds.Quantile(objs[0], 1)
	hv, err := pareto.Hypervolume2D([2]metrics.Objective{objs[0], objs[1]}, front, [2]float64{worstLUTs * 1.01, 0})
	if err != nil {
		return nil, err
	}

	t := Table{
		Name:   "ext_pareto",
		Title:  "extension: FFT area-throughput Pareto front",
		Header: []string{"quantity", "value"},
		Rows: [][]string{
			{"feasible designs", fi(ds.Size())},
			{"Pareto-optimal designs", fi(len(front))},
			{"front hypervolume (ref: worst area, zero throughput)", fmt.Sprintf("%.4g", hv)},
			{"cheapest front point", fmt.Sprintf("%.0f LUTs @ %.0f MSPS", front[0].Values[0], front[0].Values[1])},
			{"fastest front point", fmt.Sprintf("%.0f LUTs @ %.0f MSPS",
				front[len(front)-1].Values[0], front[len(front)-1].Values[1])},
		},
	}

	// How close do single-objective Nautilus answers land to the front?
	lib := fft.ExpertHints()
	for _, q := range []struct {
		name    string
		obj     metrics.Objective
		weights map[string]float64
	}{
		{"min LUTs", metrics.MinimizeMetric(metrics.LUTs), nil},
		{"max throughput/LUT", metrics.ThroughputPerLUT(), map[string]float64{"throughput_per_lut": 1}},
	} {
		var g *core.Guidance
		var err error
		if q.weights != nil {
			g, err = lib.Guidance(q.obj.Direction(), q.weights, StrongConfidence)
		} else {
			g, err = lib.GuidanceForObjective(q.obj, StrongConfidence)
		}
		if err != nil {
			return nil, err
		}
		res, err := runGA(s, q.obj, ds.Evaluator(), g, "ext_pareto", q.name, 1, cfg.generations(80), cfg.parallelism(), cfg.Recorder)
		if err != nil {
			return nil, err
		}
		if res[0].BestPoint == nil {
			continue
		}
		m, _ := ds.Lookup(res[0].BestPoint)
		l, _ := objs[0].Value(m)
		tp, _ := objs[1].Value(m)
		dist := pareto.DistanceToFront(front, []float64{l, tp})
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("nautilus '%s' answer vs front", q.name),
			fmt.Sprintf("%.0f LUTs @ %.0f MSPS, gap %.1f%%", l, tp, 100*dist),
		})
	}
	if err := t.writeCSV(cfg.OutDir); err != nil {
		return nil, err
	}
	return []Table{t}, nil
}

// ExtensionSimVsAnalytical cross-validates the two characterization
// substrates: the analytical bisection-bandwidth model used for Figure 2
// against measured saturation throughput from the cycle-based wormhole
// simulator, across the simulatable topology families.
func ExtensionSimVsAnalytical(cfg Config) ([]Table, error) {
	s := noc.NetworkSpace()
	t := Table{
		Name:  "ext_sim_vs_analytical",
		Title: "extension: analytical bisection bandwidth vs simulated saturation (64 endpoints)",
		Header: []string{"topology", "analytical bisection (Gbps)", "simulated saturation (flits/node/cyc)",
			"zero-load latency (cyc)"},
	}
	type pair struct{ analytical, simulated float64 }
	topos := []string{
		netsim.TopoRing, netsim.TopoConcRing, netsim.TopoDoubleRing,
		netsim.TopoConcDoubleRing, netsim.TopoMesh, netsim.TopoTorus, netsim.TopoFatTree,
	}
	type simRow struct {
		bw, sat, lat float64
	}
	// Each topology's simulation is independent and internally seeded, so
	// the sweep fans out; rows are assembled in topology order afterwards.
	rows, err := pool.MapRec(cfg.parallelism(), len(topos), func(i int) (simRow, error) {
		pt := make([]int, s.Len())
		ptP := s.Set(pt, noc.ParamTopology, topos[i])
		ptP = s.Set(ptP, noc.ParamVCs, "2")
		ptP = s.Set(ptP, noc.ParamBufDepth, "4")
		ptP = s.Set(ptP, noc.ParamFlitWidth, "64")
		n := noc.DecodeNetwork(s, ptP)
		analytical, err := noc.NetworkEvaluate(s, ptP)
		if err != nil {
			return simRow{}, err
		}
		sim, err := n.SimulatePerformance(13)
		if err != nil {
			return simRow{}, err
		}
		bw, _ := analytical.Get(metrics.BisectionGbps)
		sat, _ := sim.Get(noc.MetricSatThroughput)
		lat, _ := sim.Get(noc.MetricZeroLoadLatency)
		return simRow{bw, sat, lat}, nil
	}, cfg.Recorder)
	if err != nil {
		return nil, err
	}
	var pairs []pair
	for i, r := range rows {
		pairs = append(pairs, pair{r.bw, r.sat})
		t.Rows = append(t.Rows, []string{topos[i], f1(r.bw), f3(r.sat), f1(r.lat)})
	}
	// Rank agreement between the two substrates.
	agree, total := 0, 0
	for i := range pairs {
		for j := i + 1; j < len(pairs); j++ {
			if pairs[i].analytical == pairs[j].analytical {
				continue
			}
			total++
			if (pairs[i].analytical < pairs[j].analytical) == (pairs[i].simulated < pairs[j].simulated) {
				agree++
			}
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"pairwise rank agreement between substrates: %d/%d", agree, total))
	if err := t.writeCSV(cfg.OutDir); err != nil {
		return nil, err
	}
	return []Table{t}, nil
}

// ExtensionThirdIP runs the generality study: the same Nautilus machinery
// applied to a third, independently built IP generator (the systolic GEMM
// accelerator), on a composite efficiency query. The paper's claim is that
// Nautilus provides IP-agnostic infrastructure; this measures it.
func ExtensionThirdIP(cfg Config) ([]Table, error) {
	s := gemm.Space()
	ds, err := dataset.BuildParallel(s, func(pt param.Point) (metrics.Metrics, error) {
		return gemm.Evaluate(s, pt)
	}, cfg.parallelism())
	if err != nil {
		return nil, err
	}
	obj := metrics.MaximizeDerived("gmacs_per_lut", metrics.Ratio(gemm.MetricGMACS, metrics.LUTs))
	strong, err := gemm.ExpertHints().Guidance(metrics.Maximize, map[string]float64{
		gemm.MetricEfficiency: 1,
	}, StrongConfidence)
	if err != nil {
		return nil, err
	}
	weak := strong.WithConfidence(WeakConfidence)

	runs, gens := cfg.runs(40), cfg.generations(80)
	rs, err := runVariants(cfg, s, obj, ds.Evaluator(), "ext_thirdip", runs, gens,
		variantSpec{"baseline", nil}, variantSpec{"weak", weak}, variantSpec{"strong", strong})
	if err != nil {
		return nil, err
	}
	base, wk, st := rs[0], rs[1], rs[2]
	_, best := ds.Best(obj)
	target := best * 0.95
	row := func(name string, results []ga.Result) []string {
		return []string{
			name,
			stats.EvalsToReach(results, obj, target).String(),
			f1(stats.MeanDistinctEvals(results)),
			fmt.Sprintf("%.4g", stats.Mean(stats.FinalValues(results, obj))),
		}
	}
	t := Table{
		Name:   "ext_thirdip",
		Title:  "extension: generality on a third IP (systolic GEMM, max GMACs/LUT)",
		Header: []string{"variant", "evals to 95% of best", "mean total evals", "mean final GMACs/LUT"},
		Rows: [][]string{
			row("baseline", base),
			row("nautilus-weak", wk),
			row("nautilus-strong", st),
		},
		Notes: []string{
			fmt.Sprintf("space: %d points (%d feasible); best %.4g GMACs/LUT",
				s.Cardinality(), ds.Size(), best),
		},
	}
	if err := t.writeCSV(cfg.OutDir); err != nil {
		return nil, err
	}
	return []Table{t}, nil
}
