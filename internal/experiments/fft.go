package experiments

import (
	"fmt"
	"sync"

	"nautilus/internal/dataset"
	"nautilus/internal/fft"
	"nautilus/internal/ga"
	"nautilus/internal/metrics"
	"nautilus/internal/param"
	"nautilus/internal/pool"
	"nautilus/internal/search"
	"nautilus/internal/stats"
)

var (
	fftOnce sync.Once
	fftDS   *dataset.Dataset
	fftErr  error
)

// fftDataset enumerates and characterizes the ~11k-point FFT space once per
// process. The first caller's parallelism level drives the build; the
// result is identical at any level.
func fftDataset(par int) (*dataset.Dataset, error) {
	fftOnce.Do(func() {
		s := fft.Space()
		fftDS, fftErr = dataset.BuildParallel(s, func(pt param.Point) (metrics.Metrics, error) {
			return fft.Evaluate(s, pt)
		}, par)
	})
	return fftDS, fftErr
}

// Fig3 reproduces the paper's Figure 3: how the design-solution score (best
// sample's percentile among all feasible designs, 100% = optimum) evolves
// per generation for the baseline GA versus Nautilus using only one or two
// bias hints, averaged over 20 runs. The paper's baseline enters the top 1%
// at generation ~56, the bias-hinted variants at generations 15-23.
func Fig3(cfg Config) ([]Table, error) {
	ds, err := fftDataset(cfg.parallelism())
	if err != nil {
		return nil, err
	}
	s := ds.Space()
	obj := metrics.MinimizeMetric(metrics.LUTs)

	g1, err := fft.BiasOnlyHints(1).GuidanceForObjective(obj, 0.8)
	if err != nil {
		return nil, err
	}
	g2, err := fft.BiasOnlyHints(2).GuidanceForObjective(obj, 0.8)
	if err != nil {
		return nil, err
	}

	runs, gens := cfg.runs(20), cfg.generations(75)
	rs, err := runVariants(cfg, s, obj, ds.Evaluator(), "fig3", runs, gens,
		variantSpec{"baseline", nil}, variantSpec{"bias1", g1}, variantSpec{"bias2", g2})
	if err != nil {
		return nil, err
	}
	base, one, two := rs[0], rs[1], rs[2]

	// Mean score per generation for each variant. The paper plots a
	// fitness-derived "design solution score (in %)"; here the score of a
	// solution is its value relative to the dataset optimum (100% = the
	// best feasible design).
	_, bestVal := ds.Best(obj)
	meanScore := func(results []runTraj, gen int) float64 {
		sum, n := 0.0, 0
		for _, r := range results {
			if v, ok := r.bestAt(gen); ok && v > 0 {
				sum += 100 * bestVal / v // minimization: optimum/value
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	tb, to, tt := toTraj(base, obj.Worst()), toTraj(one, obj.Worst()), toTraj(two, obj.Worst())

	curve := Table{
		Name:   "fig3_curve",
		Title:  "mean design-solution score (%) per generation",
		Header: []string{"generation", "baseline", "nautilus_1_bias_hint", "nautilus_2_bias_hints"},
	}
	for gen := 0; gen <= gens; gen++ {
		curve.Rows = append(curve.Rows, []string{
			fi(gen), f2(meanScore(tb, gen)), f2(meanScore(to, gen)), f2(meanScore(tt, gen)),
		})
	}

	// Generations to reach the top 1%.
	top1 := ds.Quantile(obj, 0.01)
	genTo := func(results []runTraj) string {
		total, reached := 0, 0
		for _, r := range results {
			for gen := 0; gen <= gens; gen++ {
				if v, ok := r.bestAt(gen); ok && !obj.Better(top1, v) {
					total += gen
					reached++
					break
				}
			}
		}
		if reached == 0 {
			return "never"
		}
		return fmt.Sprintf("%.1f (%d/%d runs)", float64(total)/float64(reached), reached, len(results))
	}

	t := Table{
		Name:   "fig3",
		Title:  "FFT: baseline GA vs Nautilus with only bias hints (paper Figure 3)",
		Header: []string{"variant", "mean generations to top 1%"},
		Rows: [][]string{
			{"baseline", genTo(tb)},
			{"nautilus (1 bias hint)", genTo(to)},
			{"nautilus (2 bias hints)", genTo(tt)},
		},
		Notes: []string{
			"paper: baseline reaches top 1% at generation ~56; 1-2 bias hints at generations 15-23",
			fmt.Sprintf("query: minimize LUTs; top-1%% threshold: %.0f LUTs", top1),
		},
	}
	if cfg.OutDir != "" {
		if err := curve.writeCSV(cfg.OutDir); err != nil {
			return nil, err
		}
	}
	if err := t.writeCSV(cfg.OutDir); err != nil {
		return nil, err
	}
	return []Table{t, curve}, nil
}

// Fig6 reproduces the paper's Figure 6: minimizing FFT LUTs with
// expert-supplied hints. The paper reports the strongly guided engine
// converging on the optimal design in ~101 synthesis runs versus ~463 for
// the baseline; to twice the minimum (the relaxed goal), 23.6 versus 78.9
// runs, where random sampling would need ~11,921.
func Fig6(cfg Config) ([]Table, error) {
	ds, err := fftDataset(cfg.parallelism())
	if err != nil {
		return nil, err
	}
	s := ds.Space()
	obj := metrics.MinimizeMetric(metrics.LUTs)
	lib := fft.ExpertHints()
	strong, err := lib.GuidanceForObjective(obj, StrongConfidence)
	if err != nil {
		return nil, err
	}
	weak := strong.WithConfidence(WeakConfidence)

	runs, gens := cfg.runs(40), cfg.generations(80)
	rs, err := runVariants(cfg, s, obj, ds.Evaluator(), "fig6", runs, gens,
		variantSpec{"baseline", nil}, variantSpec{"weak", weak}, variantSpec{"strong", strong})
	if err != nil {
		return nil, err
	}
	base, wk, st := rs[0], rs[1], rs[2]

	_, best := ds.Best(obj)
	optTarget := best * 1.005 // "converge on the optimum" with rounding slack
	relaxed := best * 2       // the paper's twice-the-minimum goal

	// Empirical random sampling to the relaxed goal; each draw sequence is
	// seeded per run, so the trials fan out freely.
	type draw struct {
		n  int
		ok bool
	}
	draws, err := pool.MapRec(cfg.parallelism(), runs, func(i int) (draw, error) {
		n, ok := search.RandomUntil(s, obj, ds.Evaluator(), relaxed,
			ds.Size()+ds.Infeasible(), seedFor("fig6", "random", i))
		return draw{n, ok}, nil
	}, cfg.Recorder)
	if err != nil {
		return nil, err
	}
	randomEvals := make([]float64, 0, runs)
	for _, d := range draws {
		if d.ok {
			randomEvals = append(randomEvals, float64(d.n))
		}
	}

	row := func(name string, rOpt, rRel stats.Reach) []string {
		return []string{name, rOpt.String(), rRel.String()}
	}
	t := Table{
		Name:   "fig6",
		Title:  "FFT: minimize LUTs, expert hints (paper Figure 6)",
		Header: []string{"variant", "evals to optimum", "evals to 2x minimum"},
		Rows: [][]string{
			row("baseline", stats.EvalsToReach(base, obj, optTarget), stats.EvalsToReach(base, obj, relaxed)),
			row("nautilus-weak", stats.EvalsToReach(wk, obj, optTarget), stats.EvalsToReach(wk, obj, relaxed)),
			row("nautilus-strong", stats.EvalsToReach(st, obj, optTarget), stats.EvalsToReach(st, obj, relaxed)),
			{"random sampling", "-", fmt.Sprintf("%.1f evals (%d/%d runs, measured)",
				stats.Mean(randomEvals), len(randomEvals), runs)},
		},
		Notes: []string{
			fmt.Sprintf("optimum: %.0f LUTs; relaxed goal: %.0f LUTs", best, relaxed),
			fmt.Sprintf("analytical random-sampling expectation to 2x-min: %.0f draws (paper: ~11,921)",
				ds.ExpectedRandomDraws(obj, relaxed)),
			"paper: strong 101 vs baseline 463 evals to optimum; 23.6 vs 78.9 to 2x-min",
		},
	}
	curve := curveTable("fig6_curve", "best LUTs vs designs evaluated", obj, base, wk, st, 500)
	if cfg.OutDir != "" {
		if err := curve.writeCSV(cfg.OutDir); err != nil {
			return nil, err
		}
	}
	if err := t.writeCSV(cfg.OutDir); err != nil {
		return nil, err
	}
	return []Table{t, curve}, nil
}

// Fig7 reproduces the paper's Figure 7: maximizing throughput-per-LUT (a
// composite metric) with expert hints. The paper reports the strongly
// guided engine reaching 1.45 MSPS/LUT in ~61.6 runs versus ~501.4 for the
// baseline (>8x), with the baseline never approaching the >1.5 region even
// after exploring >5x more of the space.
func Fig7(cfg Config) ([]Table, error) {
	ds, err := fftDataset(cfg.parallelism())
	if err != nil {
		return nil, err
	}
	s := ds.Space()
	obj := metrics.ThroughputPerLUT()
	lib := fft.ExpertHints()
	strong, err := lib.Guidance(metrics.Maximize, map[string]float64{"throughput_per_lut": 1}, StrongConfidence)
	if err != nil {
		return nil, err
	}
	weak := strong.WithConfidence(WeakConfidence)

	runs, gens := cfg.runs(40), cfg.generations(80)
	rs, err := runVariants(cfg, s, obj, ds.Evaluator(), "fig7", runs, gens,
		variantSpec{"baseline", nil}, variantSpec{"weak", weak}, variantSpec{"strong", strong})
	if err != nil {
		return nil, err
	}
	base, wk, st := rs[0], rs[1], rs[2]

	_, best := ds.Best(obj)
	mid := best * 0.95  // the paper's 1.45-MSPS/LUT analog
	high := best * 0.99 // the paper's >1.5 analog the baseline never approaches

	mk := func(name string, rMid, rHigh stats.Reach, total, final float64) []string {
		return []string{name, rMid.String(), rHigh.String(), f1(total), f3(final)}
	}
	t := Table{
		Name:   "fig7",
		Title:  "FFT: maximize throughput per LUT, expert hints (paper Figure 7)",
		Header: []string{"variant", "evals to 95% of best", "evals to 99% of best", "mean total evals", "mean final MSPS/LUT"},
		Rows: [][]string{
			mk("baseline", stats.EvalsToReach(base, obj, mid), stats.EvalsToReach(base, obj, high),
				stats.MeanDistinctEvals(base), stats.Mean(stats.FinalValues(base, obj))),
			mk("nautilus-weak", stats.EvalsToReach(wk, obj, mid), stats.EvalsToReach(wk, obj, high),
				stats.MeanDistinctEvals(wk), stats.Mean(stats.FinalValues(wk, obj))),
			mk("nautilus-strong", stats.EvalsToReach(st, obj, mid), stats.EvalsToReach(st, obj, high),
				stats.MeanDistinctEvals(st), stats.Mean(stats.FinalValues(st, obj))),
		},
		Notes: []string{
			fmt.Sprintf("best design: %.3f MSPS/LUT; 95%% target: %.3f; 99%% target: %.3f", best, mid, high),
			"paper: strong reaches 1.45 in 61.6 evals vs baseline 501.4 (>8x); baseline never approaches 1.5",
		},
	}
	curve := curveTable("fig7_curve", "best MSPS/LUT vs designs evaluated", obj, base, wk, st, 500)
	if cfg.OutDir != "" {
		if err := curve.writeCSV(cfg.OutDir); err != nil {
			return nil, err
		}
	}
	if err := t.writeCSV(cfg.OutDir); err != nil {
		return nil, err
	}
	return []Table{t, curve}, nil
}

// runTraj adapts a ga.Result to generation-indexed best values.
type runTraj struct {
	byGen []float64
	worst float64
}

func (r runTraj) bestAt(gen int) (float64, bool) {
	if gen >= len(r.byGen) {
		gen = len(r.byGen) - 1
	}
	if gen < 0 || r.byGen[gen] == r.worst {
		return 0, false
	}
	return r.byGen[gen], true
}

func toTraj(results []ga.Result, worst float64) []runTraj {
	out := make([]runTraj, len(results))
	for i, res := range results {
		vals := make([]float64, len(res.Trajectory))
		for j, gp := range res.Trajectory {
			vals[j] = gp.BestValue
		}
		out[i] = runTraj{byGen: vals, worst: worst}
	}
	return out
}
