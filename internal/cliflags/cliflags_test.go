package cliflags

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func newFS() *flag.FlagSet {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(discard{})
	return fs
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func TestParallelismValidate(t *testing.T) {
	cases := []struct {
		args      []string
		allowZero bool
		wantErr   bool
	}{
		{[]string{}, false, false},
		{[]string{"-par", "4"}, false, false},
		{[]string{"-par", "0"}, false, true},  // search convention: min 1
		{[]string{"-par", "0"}, true, false},  // harness convention: 0 = all cores
		{[]string{"-par", "-1"}, true, true},  // negative never valid
		{[]string{"-par", "-1"}, false, true}, // negative never valid
	}
	for i, tc := range cases {
		fs := newFS()
		def := 1
		if tc.allowZero {
			def = 0
		}
		p := NewParallelism(fs, def, tc.allowZero)
		if err := fs.Parse(tc.args); err != nil {
			t.Fatalf("case %d: parse: %v", i, err)
		}
		if err := p.Validate(); (err != nil) != tc.wantErr {
			t.Errorf("case %d (%v, allowZero=%v): Validate() = %v, wantErr %v",
				i, tc.args, tc.allowZero, err, tc.wantErr)
		}
	}

	fs := newFS()
	p := NewParallelism(fs, 0, true)
	if err := fs.Parse([]string{"-par", "7"}); err != nil {
		t.Fatal(err)
	}
	if p.Value() != 7 {
		t.Errorf("Value() = %d, want 7", p.Value())
	}
}

func TestSupervisionValidateAndPolicy(t *testing.T) {
	bad := [][]string{
		{"-eval-timeout", "-1s"},
		{"-eval-retries", "-1"},
		{"-quarantine-after", "-2"},
	}
	for _, args := range bad {
		fs := newFS()
		s := NewSupervision(fs, true)
		if err := fs.Parse(args); err != nil {
			t.Fatalf("%v: parse: %v", args, err)
		}
		if err := s.Validate(); err == nil {
			t.Errorf("%v: Validate() = nil, want error", args)
		}
	}

	fs := newFS()
	s := NewSupervision(fs, true)
	if err := fs.Parse([]string{"-eval-timeout", "30s", "-eval-retries", "5", "-quarantine-after", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate() = %v", err)
	}
	if !s.Enabled() {
		t.Error("Enabled() = false with all supervision flags set")
	}
	p := s.Policy()
	if p.Timeout != 30*time.Second || p.MaxAttempts != 5 || p.QuarantineAfter != 3 {
		t.Errorf("Policy() = %+v, want 30s/5/3", p)
	}

	// Defaults: supervision stays off, policy zero.
	fs = newFS()
	s = NewSupervision(fs, false)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if s.Enabled() {
		t.Error("Enabled() = true with no flags set")
	}
	if s.Quarantine != nil {
		t.Error("Quarantine registered without withQuarantine")
	}
	if p := s.Policy(); p.QuarantineAfter != 0 {
		t.Errorf("Policy().QuarantineAfter = %d without the flag, want 0", p.QuarantineAfter)
	}
}

func TestObservabilityWantSummary(t *testing.T) {
	fs := newFS()
	o := NewObservability(fs, true)
	if err := fs.Parse([]string{"-trace"}); err != nil {
		t.Fatal(err)
	}
	if !o.WantSummary() {
		t.Error("WantSummary() = false with -trace alias set")
	}

	fs = newFS()
	o = NewObservability(fs, false)
	if err := fs.Parse([]string{"-summary"}); err != nil {
		t.Fatal(err)
	}
	if !o.WantSummary() {
		t.Error("WantSummary() = false with -summary set")
	}
	if err := fs.Parse([]string{"-trace"}); err == nil {
		t.Error("-trace parsed without the alias registered")
	}
}

func TestTracingBuild(t *testing.T) {
	// Zero stack: no flags, nil tracer, every method no-ops.
	fs := newFS()
	tr := NewTracing(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Enabled() {
		t.Error("Enabled() = true with no tracing flags")
	}
	st, err := tr.Build("", 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tracer != nil || st.Ring != nil || st.Durations != nil {
		t.Errorf("zero stack not zero: %+v", st)
	}
	if err := st.DumpRing(discard{}); err != nil {
		t.Errorf("DumpRing on zero stack: %v", err)
	}
	if err := st.WriteSummary(discard{}); err != nil {
		t.Errorf("WriteSummary on zero stack: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Errorf("Close on zero stack: %v", err)
	}

	// Negative buffer rejected.
	fs = newFS()
	tr = NewTracing(fs)
	if err := fs.Parse([]string{"-trace-buffer", "-1"}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err == nil {
		t.Error("Validate() = nil with -trace-buffer -1")
	}

	// Full stack: spans reach the file, the ring, and the summary.
	out := filepath.Join(t.TempDir(), "spans.jsonl")
	fs = newFS()
	tr = NewTracing(fs)
	if err := fs.Parse([]string{"-trace-out", out, "-trace-buffer", "8"}); err != nil {
		t.Fatal(err)
	}
	st, err = tr.Build("", 42)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tracer == nil || st.Ring == nil || st.Durations == nil {
		t.Fatal("enabled stack missing tracer/ring/durations")
	}
	sp := st.Tracer.Start("test.op")
	sp.Child("test.child").End()
	sp.End()
	if err := st.Close(); err != nil {
		t.Fatalf("Close() = %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"test.child"`) {
		t.Errorf("trace-out file missing spans:\n%s", data)
	}
	if got := len(st.Ring.Snapshot()); got != 2 {
		t.Errorf("ring retained %d spans, want 2", got)
	}
	var buf strings.Builder
	if err := st.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "test.op") {
		t.Errorf("span summary missing test.op:\n%s", buf.String())
	}

	// An unwritable trace-out path surfaces as a Build error.
	fs = newFS()
	tr = NewTracing(fs)
	if err := fs.Parse([]string{"-trace-out", filepath.Join(t.TempDir(), "no", "dir", "x.jsonl")}); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Build("", 1); err == nil || !strings.Contains(err.Error(), "trace-out") {
		t.Errorf("Build() with bad trace-out path = %v, want trace-out error", err)
	}
}

func TestStackZeroCost(t *testing.T) {
	fs := newFS()
	o := NewObservability(fs, true)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	st, err := o.Build()
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Recorder != nil {
		t.Error("Recorder non-nil with no observability flags")
	}
	if st.Collector != nil {
		t.Error("Collector non-nil with no observability flags")
	}
	if st.Registry() != nil {
		t.Error("Registry() non-nil with no collector")
	}
	if err := st.Close(); err != nil {
		t.Errorf("Close() on zero stack = %v", err)
	}
}

func TestStackAssembly(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "events.jsonl")
	fs := newFS()
	o := NewObservability(fs, false)
	if err := fs.Parse([]string{"-summary", "-journal", journal}); err != nil {
		t.Fatal(err)
	}
	st, err := o.Build()
	if err != nil {
		t.Fatal(err)
	}
	if st.Collector == nil || st.Recorder == nil || st.Registry() == nil {
		t.Fatal("summary+journal stack missing collector/recorder/registry")
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close() = %v", err)
	}
	if _, err := os.Stat(journal); err != nil {
		t.Errorf("journal file: %v", err)
	}

	// An unwritable journal path surfaces as a Build error.
	fs = newFS()
	o = NewObservability(fs, false)
	if err := fs.Parse([]string{"-journal", filepath.Join(t.TempDir(), "no", "such", "dir", "x.jsonl")}); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Build(); err == nil || !strings.Contains(err.Error(), "journal") {
		t.Errorf("Build() with bad journal path = %v, want journal error", err)
	}
}
