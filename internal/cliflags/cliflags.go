// Package cliflags is the one home of the flag wiring the Nautilus command
// line tools share: evaluation parallelism (-par), evaluation supervision
// (-eval-timeout, -eval-retries, -quarantine-after), run observability
// (-summary, -journal, -debug-addr), span tracing (-trace-out,
// -trace-buffer), and profiling (-cpuprofile, -memprofile). Before this
// package each tool re-declared the flags and re-implemented their
// validation and the telemetry sink assembly; now there is exactly one
// usage string, one validation path, and one assembly routine per concern,
// and a new tool opts into a concern with one call.
package cliflags

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"nautilus/internal/resilience"
	"nautilus/internal/telemetry"
	"nautilus/internal/telemetry/trace"
)

// Parallelism is the shared -par flag.
type Parallelism struct {
	N *int
	// allowZero: 0 means "all cores" (harness tools) rather than invalid
	// (search tools, which need at least one evaluation worker).
	allowZero bool
}

// NewParallelism registers -par on fs with the given default. allowZero
// selects the harness convention (0 = all cores) over the search-tool
// convention (minimum 1).
func NewParallelism(fs *flag.FlagSet, def int, allowZero bool) *Parallelism {
	usage := "parallel fitness evaluations (capped by population size; results are identical at any level)"
	if allowZero {
		usage = "max parallel workers (0 = all cores, 1 = sequential; output is identical at any level)"
	}
	return &Parallelism{N: fs.Int("par", def, usage), allowZero: allowZero}
}

// Validate rejects out-of-range -par values.
func (p *Parallelism) Validate() error {
	minimum := 1
	if p.allowZero {
		minimum = 0
	}
	if *p.N < minimum {
		if p.allowZero {
			return fmt.Errorf("-par must be non-negative (0 = all cores), got %d", *p.N)
		}
		return fmt.Errorf("-par must be at least 1, got %d", *p.N)
	}
	return nil
}

// Value returns the parsed parallelism.
func (p *Parallelism) Value() int { return *p.N }

// Supervision bundles the evaluation-supervision flags: -eval-timeout,
// -eval-retries, and (for tools with a quarantine breaker) -quarantine-after.
type Supervision struct {
	Timeout *time.Duration
	Retries *int
	// Quarantine is nil when the tool did not register -quarantine-after.
	Quarantine *int
}

// NewSupervision registers the supervision flags on fs. withQuarantine adds
// -quarantine-after for tools that run searches (a one-shot enumeration has
// nothing to quarantine).
func NewSupervision(fs *flag.FlagSet, withQuarantine bool) *Supervision {
	s := &Supervision{
		Timeout: fs.Duration("eval-timeout", 0, "per-attempt evaluation deadline, e.g. 30s (0 = none)"),
		Retries: fs.Int("eval-retries", 0, "max attempts per evaluation for transient failures (0 = default 3)"),
	}
	if withQuarantine {
		s.Quarantine = fs.Int("quarantine-after", 0, "demote a point to infeasible after N exhausted retry rounds (0 = default 2)")
	}
	return s
}

// Validate rejects out-of-range supervision values.
func (s *Supervision) Validate() error {
	if *s.Timeout < 0 {
		return fmt.Errorf("-eval-timeout must be non-negative, got %v", *s.Timeout)
	}
	if *s.Retries < 0 {
		return fmt.Errorf("-eval-retries must be non-negative (0 = default), got %d", *s.Retries)
	}
	if s.Quarantine != nil && *s.Quarantine < 0 {
		return fmt.Errorf("-quarantine-after must be non-negative (0 = default), got %d", *s.Quarantine)
	}
	return nil
}

// Enabled reports whether any supervision flag asks for the supervised
// evaluation path.
func (s *Supervision) Enabled() bool {
	return *s.Timeout > 0 || *s.Retries > 0 || (s.Quarantine != nil && *s.Quarantine > 0)
}

// Policy builds the resilience policy the flags describe.
func (s *Supervision) Policy() resilience.Policy {
	p := resilience.Policy{Timeout: *s.Timeout, MaxAttempts: *s.Retries}
	if s.Quarantine != nil {
		p.QuarantineAfter = *s.Quarantine
	}
	return p
}

// Observability bundles the telemetry flags: -summary (optionally aliased
// by -trace), -journal, and -debug-addr.
type Observability struct {
	Summary   *bool
	trace     *bool
	Journal   *string
	DebugAddr *string
}

// NewObservability registers the observability flags on fs. withTraceAlias
// adds -trace as a deprecated alias of -summary.
func NewObservability(fs *flag.FlagSet, withTraceAlias bool) *Observability {
	o := &Observability{
		Summary:   fs.Bool("summary", false, "print the end-of-run telemetry summary (per-generation trajectory, cache, hints, pool)"),
		Journal:   fs.String("journal", "", "append structured run events as JSON lines to this file"),
		DebugAddr: DebugAddr(fs),
	}
	if withTraceAlias {
		o.trace = fs.Bool("trace", false, "alias for -summary (the old per-generation trace is part of the summary)")
	}
	return o
}

// DebugAddr registers just -debug-addr, for tools (mapspace) that serve a
// custom registry rather than the full collector stack.
func DebugAddr(fs *flag.FlagSet) *string {
	return fs.String("debug-addr", "", "serve live metrics (expvar) and pprof on this address, e.g. localhost:6060")
}

// WantSummary reports whether -summary (or its -trace alias) was set.
func (o *Observability) WantSummary() bool {
	return *o.Summary || (o.trace != nil && *o.trace)
}

// Stack is the assembled telemetry sinks an Observability flag set asked
// for. The zero stack (no flags set) costs nothing: Recorder is nil and
// every method no-ops.
type Stack struct {
	// Collector aggregates run events when -summary or -debug-addr asked
	// for them; nil otherwise.
	Collector *telemetry.Collector
	// Recorder is the combined sink to hand the engine; nil when no
	// observability flag was set.
	Recorder telemetry.Recorder
	closers  []func() error
}

// Build assembles the sinks: a collector backing the summary report and
// the debug endpoint, a JSONL journal, and the debug HTTP listener. The
// debug endpoint's URL, when serving, is printed to stdout (matching the
// tools' existing contract). Call Close when the run is done.
func (o *Observability) Build() (*Stack, error) {
	st := &Stack{}
	var recorders []telemetry.Recorder
	if o.WantSummary() || *o.DebugAddr != "" {
		st.Collector = telemetry.NewCollector(nil)
		recorders = append(recorders, st.Collector)
	}
	if *o.Journal != "" {
		f, err := os.Create(*o.Journal)
		if err != nil {
			return nil, fmt.Errorf("journal: %w", err)
		}
		j := telemetry.NewJournal(f)
		st.closers = append(st.closers, j.Close, f.Close)
		recorders = append(recorders, j)
	}
	if *o.DebugAddr != "" {
		addr, err := telemetry.ServeDebug(*o.DebugAddr, st.Collector.Registry())
		if err != nil {
			st.Close()
			return nil, fmt.Errorf("debug endpoint: %w", err)
		}
		fmt.Printf("debug endpoint:  http://%s/debug/vars\n", addr)
	}
	if len(recorders) > 0 {
		st.Recorder = telemetry.Multi(recorders...)
	}
	return st, nil
}

// Tracing bundles the span-tracing flags: -trace-out streams completed
// spans as JSON lines, -trace-buffer keeps an in-memory flight recorder of
// the last N spans for post-mortems. Distinct from the deprecated -trace
// flag, which is an alias of -summary.
type Tracing struct {
	Out    *string
	Buffer *int
}

// NewTracing registers -trace-out and -trace-buffer on fs.
func NewTracing(fs *flag.FlagSet) *Tracing {
	return &Tracing{
		Out:    fs.String("trace-out", "", "append completed spans (generation, dispatch, cache, retry phases) as JSON lines to this file"),
		Buffer: fs.Int("trace-buffer", 0, "retain the last N spans in memory and dump them on interrupt or failure (0 = off)"),
	}
}

// Validate rejects out-of-range tracing values.
func (t *Tracing) Validate() error {
	if *t.Buffer < 0 {
		return fmt.Errorf("-trace-buffer must be non-negative (0 = off), got %d", *t.Buffer)
	}
	return nil
}

// Enabled reports whether any tracing flag asks for a live tracer.
func (t *Tracing) Enabled() bool { return *t.Out != "" || *t.Buffer > 0 }

// TraceStack is the assembled tracer and its sinks. The zero stack (no
// tracing flags set) costs nothing: Tracer is nil - the disabled tracer -
// and every method no-ops.
type TraceStack struct {
	// Tracer is non-nil when a tracing flag was set; hand it to the engine
	// (core.WithTracer). Tracing is observational only: span IDs come from
	// a private seeded stream, so results are byte-identical either way.
	Tracer *trace.Tracer
	// Ring is the flight recorder behind -trace-buffer; nil otherwise.
	Ring *trace.Ring
	// Durations aggregates per-span-name latency histograms for the
	// end-of-run span summary; nil when tracing is off.
	Durations *trace.Durations
	closers   []func() error
}

// Build assembles the tracer the flags describe: a JSONL journal sink for
// -trace-out, a flight-recorder ring for -trace-buffer, and a duration
// aggregator for the span summary. session labels every span ("" for CLI
// runs); seed seeds the span-ID stream (pass the search seed so traces of
// the same run are comparable). Call Close when the run is done.
func (t *Tracing) Build(session string, seed int64) (*TraceStack, error) {
	st := &TraceStack{}
	if !t.Enabled() {
		return st, nil
	}
	var sinks []trace.Sink
	if *t.Out != "" {
		f, err := os.Create(*t.Out)
		if err != nil {
			return nil, fmt.Errorf("trace-out: %w", err)
		}
		j := telemetry.NewJournal(f)
		st.closers = append(st.closers, j.Close, f.Close)
		sinks = append(sinks, trace.JournalSink{J: j})
	}
	if *t.Buffer > 0 {
		st.Ring = trace.NewRing(*t.Buffer)
		sinks = append(sinks, st.Ring)
	}
	st.Durations = trace.NewDurations()
	sinks = append(sinks, st.Durations)
	st.Tracer = trace.New(trace.Config{Session: session, Seed: seed, Sinks: sinks})
	return st, nil
}

// DumpRing writes the flight recorder's retained spans as JSON lines,
// oldest first - the post-mortem view of where the final moments of an
// interrupted or failed run went. No-op without -trace-buffer.
func (ts *TraceStack) DumpRing(w io.Writer) error {
	if ts.Ring == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, sp := range ts.Ring.Snapshot() {
		if err := enc.Encode(sp); err != nil {
			return err
		}
	}
	return nil
}

// WriteSummary prints the per-span-name latency table (count, p50, p99,
// mean) the Durations sink aggregated. No-op when tracing is off.
func (ts *TraceStack) WriteSummary(w io.Writer) error {
	if ts.Durations == nil {
		return nil
	}
	snaps := ts.Durations.Hists.Snapshot()
	names := make([]string, 0, len(snaps))
	for name := range snaps {
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "span latency (count, p50, p99, mean):\n"); err != nil {
		return err
	}
	for _, name := range names {
		s := snaps[name]
		us := func(ns float64) float64 { return ns / 1e3 }
		if _, err := fmt.Fprintf(w, "  %-20s %7d  %10.1fµs %10.1fµs %10.1fµs\n",
			name, s.Count, us(s.P50()), us(s.P99()), us(s.Mean())); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes and closes the trace-out sink. Safe on the zero stack.
func (ts *TraceStack) Close() error {
	var first error
	for _, c := range ts.closers {
		if err := c(); err != nil && first == nil {
			first = err
		}
	}
	ts.closers = nil
	return first
}

// Profiling bundles the profiler flags: -cpuprofile and -memprofile, the
// standard pprof pair for chasing hot-path regressions (the dispatch
// pipeline's per-eval cost, allocation churn in the GA loop).
type Profiling struct {
	CPU *string
	Mem *string

	cpuFile *os.File
}

// NewProfiling registers -cpuprofile and -memprofile on fs.
func NewProfiling(fs *flag.FlagSet) *Profiling {
	return &Profiling{
		CPU: fs.String("cpuprofile", "", "write a CPU profile to this file (inspect with go tool pprof)"),
		Mem: fs.String("memprofile", "", "write a heap profile to this file on exit (inspect with go tool pprof)"),
	}
}

// Start begins CPU profiling when -cpuprofile was set. Call after flag
// parsing, before the measured work; pair with Stop.
func (p *Profiling) Start() error {
	if *p.CPU == "" {
		return nil
	}
	f, err := os.Create(*p.CPU)
	if err != nil {
		return fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("cpuprofile: %w", err)
	}
	p.cpuFile = f
	return nil
}

// Stop ends CPU profiling and writes the heap profile when -memprofile was
// set. Safe to call when neither flag was given, and idempotent for the CPU
// half.
func (p *Profiling) Stop() error {
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		err := p.cpuFile.Close()
		p.cpuFile = nil
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
	}
	if *p.Mem != "" {
		f, err := os.Create(*p.Mem)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		runtime.GC() // materialize the steady-state heap before snapshotting
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("memprofile: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
	}
	return nil
}

// Registry returns the collector's metric registry, or nil when no
// collector was assembled - ready to pass where a *telemetry.Registry is
// optional (resilience supervisors, checkpoint savers).
func (s *Stack) Registry() *telemetry.Registry {
	if s.Collector == nil {
		return nil
	}
	return s.Collector.Registry()
}

// Close flushes and closes the journal sinks. Safe on the zero stack.
func (s *Stack) Close() error {
	var first error
	for _, c := range s.closers {
		if err := c(); err != nil && first == nil {
			first = err
		}
	}
	s.closers = nil
	return first
}
