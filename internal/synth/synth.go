// Package synth provides the synthesis-substrate models that stand in for
// the EDA tools used in the Nautilus paper (Xilinx XST 14.7 targeting a
// Virtex-6 LX760T, and a commercial 65nm ASIC flow).
//
// The genetic-algorithm machinery never looks inside the tools: it only
// observes (design point -> metrics). These analytical models therefore only
// need to reproduce the *structure* of real synthesis results - the additive
// and multiplicative area terms of hardware building blocks, frequency that
// degrades with logic depth and routing congestion, and small per-design
// "CAD noise" - not absolute tool output. All models are deterministic:
// the same design always synthesizes to the same numbers, with pseudo-random
// noise derived from a hash of the design's identity.
package synth

import (
	"hash/fnv"
	"math"
)

// FPGADevice describes an FPGA target for the LUT/Fmax models.
type FPGADevice struct {
	Name string
	// LUTCapacity is the number of 6-input LUTs on the device.
	LUTCapacity int
	// ClkToQNS is the fixed register clock-to-out plus setup time in ns.
	ClkToQNS float64
	// LUTDelayNS is the propagation delay of one LUT level in ns.
	LUTDelayNS float64
	// NetDelayNS is the base routing delay charged per logic level in ns;
	// it is scaled up by the congestion factor passed to Fmax.
	NetDelayNS float64
	// FmaxCapMHz bounds the achievable clock frequency (global clocking
	// limits) in MHz.
	FmaxCapMHz float64
}

// Virtex6LX760 approximates the Xilinx Virtex-6 LX760T (xc6vlx760) used for
// the paper's FPGA characterization runs.
var Virtex6LX760 = FPGADevice{
	Name:        "xc6vlx760",
	LUTCapacity: 474240,
	ClkToQNS:    0.60,
	LUTDelayNS:  0.25,
	NetDelayNS:  0.45,
	FmaxCapMHz:  500,
}

// Fmax estimates the maximum clock frequency in MHz of a circuit whose
// critical path crosses the given number of logic levels, with a relative
// routing-congestion factor (0 = uncongested; 1 roughly doubles net delay).
// Levels below 1 are clamped to 1.
func (d FPGADevice) Fmax(levels, congestion float64) float64 {
	if levels < 1 {
		levels = 1
	}
	if congestion < 0 {
		congestion = 0
	}
	period := d.ClkToQNS + levels*(d.LUTDelayNS+d.NetDelayNS*(1+congestion))
	f := 1000 / period
	if f > d.FmaxCapMHz {
		f = d.FmaxCapMHz
	}
	return f
}

// Congestion estimates a routing-congestion factor from device utilization
// (used LUTs / capacity) and fan-in pressure of the widest structure. Both
// effects are mild until utilization grows large, matching observed FPGA
// behaviour.
func (d FPGADevice) Congestion(usedLUTs float64, maxFanIn int) float64 {
	util := usedLUTs / float64(d.LUTCapacity)
	if util < 0 {
		util = 0
	}
	fanin := 0.0
	if maxFanIn > 4 {
		fanin = 0.08 * math.Log2(float64(maxFanIn)/4)
	}
	return util*2.5 + fanin
}

// ASICNode describes a standard-cell technology node for area/power models.
type ASICNode struct {
	Name string
	// KGEPerMM2 is how many thousand gate equivalents fit in one mm^2.
	KGEPerMM2 float64
	// DynUWPerGEMHz is dynamic power in microwatts per gate equivalent per
	// MHz at nominal activity 1.0.
	DynUWPerGEMHz float64
	// LeakNWPerGE is leakage power in nanowatts per gate equivalent.
	LeakNWPerGE float64
	// SRAMKGEPerKb is the gate-equivalent cost of 1 kilobit of SRAM.
	SRAMKGEPerKb float64
}

// ASIC65nm approximates the commercial 65nm node used for the paper's
// CONNECT NoC characterization (Figure 2).
var ASIC65nm = ASICNode{
	Name:          "commercial-65nm",
	KGEPerMM2:     800, // 800 kGE per mm^2
	DynUWPerGEMHz: 0.009,
	LeakNWPerGE:   2.0,
	SRAMKGEPerKb:  1.5,
}

// AreaMM2 converts a gate-equivalent count (in kGE) to silicon area.
func (n ASICNode) AreaMM2(kGE float64) float64 {
	if kGE < 0 {
		kGE = 0
	}
	return kGE / n.KGEPerMM2
}

// PowerMW estimates total power in mW for kGE thousand gate equivalents
// clocked at freqMHz with the given switching activity (0..1].
func (n ASICNode) PowerMW(kGE, freqMHz, activity float64) float64 {
	if kGE < 0 {
		kGE = 0
	}
	if activity <= 0 {
		activity = 0.1
	}
	dynamic := kGE * 1000 * n.DynUWPerGEMHz * freqMHz * activity / 1000 // mW
	leakage := kGE * 1000 * n.LeakNWPerGE / 1e6                         // mW
	return dynamic + leakage
}

// KGEFromLUTs maps an FPGA LUT count to an ASIC gate-equivalent estimate.
// One 6-LUT plus its register is on the order of 8 gate equivalents.
func KGEFromLUTs(luts float64) float64 {
	return luts * 8 / 1000
}

// ---- Building-block LUT cost primitives -----------------------------------
//
// These reproduce well-known FPGA mapping results for the structures that
// dominate NoC routers and streaming transforms. All return fractional LUTs;
// callers round once at the end so composition does not accumulate rounding
// error.

const lutInputs = 6

// MuxLUTs estimates the LUTs needed for a width-bit n-to-1 multiplexer.
// A 6-input LUT implements a 4:1 mux (2 select bits); wider muxes form trees.
func MuxLUTs(inputs, width int) float64 {
	if inputs <= 1 || width <= 0 {
		return 0
	}
	perBit := 0.0
	n := inputs
	for n > 1 {
		stages := math.Ceil(float64(n) / 4)
		perBit += stages
		n = int(stages)
	}
	return perBit * float64(width)
}

// CrossbarLUTs estimates a full ports x ports crossbar of the given data
// width: one n-to-1 mux per output port.
func CrossbarLUTs(ports, width int) float64 {
	if ports <= 1 {
		return 0
	}
	return float64(ports) * MuxLUTs(ports, width)
}

// LUTRAMBits is the storage capacity of one LUT used as distributed RAM.
const LUTRAMBits = 64

// FIFOLUTs estimates a depth x width FIFO built from LUTRAM plus pointer
// and flag logic. Shallow FIFOs are register-based and slightly cheaper per
// bit.
func FIFOLUTs(depth, width int) float64 {
	if depth <= 0 || width <= 0 {
		return 0
	}
	var storage float64
	if depth <= 2 {
		storage = float64(depth*width) * 0.10 // register-based; control-only LUT cost
	} else {
		// LUTRAM: each 6-LUT serves as a 64x1 RAM, so a depth-D width-W
		// FIFO needs W * ceil(D/64) storage LUTs.
		storage = float64(width) * math.Ceil(float64(depth)/LUTRAMBits)
	}
	control := 4 + 2*math.Ceil(math.Log2(float64(depth+1))) // pointers + flags
	return storage + control
}

// RegisterLUTs estimates the LUT overhead of a width-bit pipeline register
// stage (registers are nearly free on FPGAs; enable/reset logic costs a
// little).
func RegisterLUTs(width int) float64 {
	return 0.12 * float64(width)
}

// ArbiterLUTs estimates a round-robin arbiter over n requesters
// (priority-rotate + grant mask logic, ~O(n log n)).
func ArbiterLUTs(n int) float64 {
	if n <= 1 {
		return 0
	}
	fn := float64(n)
	return 3*fn + fn*math.Log2(fn)
}

// WavefrontAllocatorLUTs estimates a wavefront allocator over an n x n
// request matrix (cost grows quadratically, faster than separable designs).
func WavefrontAllocatorLUTs(n int) float64 {
	if n <= 1 {
		return 0
	}
	fn := float64(n)
	return 5 * fn * fn
}

// AdderLUTs estimates a width-bit carry-chain adder (about 1 LUT/bit).
func AdderLUTs(width int) float64 {
	return float64(width)
}

// MultiplierLUTs estimates a width x width soft multiplier when DSP blocks
// are not used (roughly width^2 / 2 with modern mapping).
func MultiplierLUTs(width int) float64 {
	fw := float64(width)
	return fw * fw / 2
}

// ComparatorLUTs estimates a width-bit magnitude comparator.
func ComparatorLUTs(width int) float64 {
	return math.Ceil(float64(width) / 3)
}

// ROMLUTs estimates a LUT-implemented ROM of the given number of entries and
// width (e.g. twiddle-factor tables).
func ROMLUTs(entries, width int) float64 {
	if entries <= 0 || width <= 0 {
		return 0
	}
	return float64(width) * math.Ceil(float64(entries)/LUTRAMBits)
}

// BRAMCapacityBits is the usable capacity of one Virtex-6 36Kb block RAM.
const BRAMCapacityBits = 36 * 1024

// BRAMsFor returns the number of block RAMs needed for bits of storage at
// the given word width (width limits the aspect ratios a single BRAM can
// serve: one 36Kb BRAM provides at most 72 data bits per access).
func BRAMsFor(bits, width int) int {
	if bits <= 0 || width <= 0 {
		return 0
	}
	byCapacity := int(math.Ceil(float64(bits) / BRAMCapacityBits))
	byWidth := int(math.Ceil(float64(width) / 72))
	if byWidth > byCapacity {
		return byWidth
	}
	return byCapacity
}

// ---- Deterministic CAD noise ----------------------------------------------

// Hash64 mixes the given strings into a 64-bit FNV-1a hash. It is the
// identity basis for all deterministic pseudo-noise in the models.
func Hash64(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// Noise returns a deterministic multiplier in [1-frac, 1+frac] derived from
// the key. It models run-to-run CAD variability: the same design always sees
// the same "noise", different designs see independent draws.
func Noise(key string, frac float64) float64 {
	if frac <= 0 {
		return 1
	}
	h := Hash64("noise", key)
	// Map the top 53 bits to [0,1).
	u := float64(h>>11) / float64(1<<53)
	return 1 + frac*(2*u-1)
}
