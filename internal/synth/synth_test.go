package synth

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestFmaxMonotonicInLevels(t *testing.T) {
	d := Virtex6LX760
	prev := math.Inf(1)
	for levels := 1.0; levels <= 20; levels++ {
		f := d.Fmax(levels, 0)
		if f > prev {
			t.Fatalf("Fmax increased from %v to %v at %v levels", prev, f, levels)
		}
		prev = f
	}
}

func TestFmaxCap(t *testing.T) {
	d := Virtex6LX760
	if f := d.Fmax(0.01, 0); f > d.FmaxCapMHz {
		t.Errorf("Fmax %v exceeds cap %v", f, d.FmaxCapMHz)
	}
	if f := d.Fmax(-5, 0); f <= 0 || f > d.FmaxCapMHz {
		t.Errorf("Fmax with negative levels = %v", f)
	}
}

func TestFmaxCongestionHurts(t *testing.T) {
	d := Virtex6LX760
	if d.Fmax(5, 1.0) >= d.Fmax(5, 0) {
		t.Error("congestion did not reduce Fmax")
	}
	if d.Fmax(5, -1) != d.Fmax(5, 0) {
		t.Error("negative congestion should clamp to 0")
	}
}

func TestFmaxRealisticRange(t *testing.T) {
	d := Virtex6LX760
	// A 4-7 level router pipeline on Virtex-6 lands in roughly 100-300 MHz.
	f := d.Fmax(5, 0.2)
	if f < 100 || f > 300 {
		t.Errorf("Fmax(5 levels) = %v MHz, outside plausible 100-300", f)
	}
}

func TestCongestionGrowsWithUtilization(t *testing.T) {
	d := Virtex6LX760
	lo := d.Congestion(1000, 4)
	hi := d.Congestion(200000, 4)
	if hi <= lo {
		t.Error("congestion should grow with utilization")
	}
	if d.Congestion(-5, 2) != 0 {
		t.Error("negative usage should clamp to 0 congestion")
	}
	if d.Congestion(1000, 64) <= d.Congestion(1000, 4) {
		t.Error("fan-in pressure should add congestion")
	}
}

func TestASICAreaPower(t *testing.T) {
	n := ASIC65nm
	a := n.AreaMM2(800)
	if math.Abs(a-1.0) > 1e-9 {
		t.Errorf("800 kGE should be 1 mm^2, got %v", a)
	}
	if n.AreaMM2(-1) != 0 {
		t.Error("negative kGE should clamp to 0 area")
	}
	p := n.PowerMW(100, 500, 0.5)
	if p <= 0 {
		t.Errorf("power = %v, want > 0", p)
	}
	if n.PowerMW(100, 500, 1.0) <= n.PowerMW(100, 500, 0.5) {
		t.Error("power should grow with activity")
	}
	if n.PowerMW(100, 500, 0.5) <= n.PowerMW(100, 100, 0.5) {
		t.Error("power should grow with frequency")
	}
	// Zero frequency leaves only leakage.
	leak := n.PowerMW(100, 0, 0.5)
	if leak <= 0 || leak > 1 {
		t.Errorf("leakage-only power = %v mW, want small positive", leak)
	}
}

func TestKGEFromLUTs(t *testing.T) {
	if g := KGEFromLUTs(1000); math.Abs(g-8) > 1e-9 {
		t.Errorf("1000 LUTs = %v kGE, want 8", g)
	}
}

func TestMuxLUTs(t *testing.T) {
	if MuxLUTs(1, 32) != 0 {
		t.Error("1-input mux should cost nothing")
	}
	if MuxLUTs(4, 1) != 1 {
		t.Errorf("4:1 mux per bit = %v, want 1 LUT", MuxLUTs(4, 1))
	}
	// 16:1 mux: 4 first-level + 1 second-level = 5 LUTs per bit.
	if MuxLUTs(16, 1) != 5 {
		t.Errorf("16:1 mux per bit = %v, want 5", MuxLUTs(16, 1))
	}
	if MuxLUTs(8, 32) != 32*MuxLUTs(8, 1) {
		t.Error("mux cost should scale linearly with width")
	}
}

func TestCrossbarLUTs(t *testing.T) {
	if CrossbarLUTs(1, 64) != 0 {
		t.Error("degenerate crossbar should cost nothing")
	}
	c5 := CrossbarLUTs(5, 32)
	c8 := CrossbarLUTs(8, 32)
	if c8 <= c5 {
		t.Error("crossbar cost should grow with ports")
	}
	// Superlinear in ports: doubling port count should more than double cost.
	if CrossbarLUTs(8, 32) <= 2*CrossbarLUTs(4, 32) {
		t.Error("crossbar should grow superlinearly with ports")
	}
}

func TestFIFOLUTs(t *testing.T) {
	if FIFOLUTs(0, 32) != 0 || FIFOLUTs(8, 0) != 0 {
		t.Error("degenerate FIFO should cost nothing")
	}
	if FIFOLUTs(8, 32) <= FIFOLUTs(2, 32) {
		t.Error("deeper FIFO should cost more")
	}
	if FIFOLUTs(8, 64) <= FIFOLUTs(8, 32) {
		t.Error("wider FIFO should cost more")
	}
}

func TestArbiterAndAllocator(t *testing.T) {
	if ArbiterLUTs(1) != 0 {
		t.Error("single-requester arbiter should be free")
	}
	if ArbiterLUTs(8) <= ArbiterLUTs(4) {
		t.Error("arbiter should grow with requesters")
	}
	// Wavefront is quadratic, separable arbiters are n log n: for large n the
	// wavefront allocator must cost more than a pair of arbiters.
	if WavefrontAllocatorLUTs(10) <= 2*ArbiterLUTs(10) {
		t.Error("wavefront allocator should exceed separable arbitration cost")
	}
}

func TestROMAndBRAM(t *testing.T) {
	if ROMLUTs(0, 18) != 0 {
		t.Error("empty ROM should be free")
	}
	if ROMLUTs(1024, 18) <= ROMLUTs(64, 18) {
		t.Error("bigger ROM should cost more")
	}
	if BRAMsFor(0, 32) != 0 {
		t.Error("zero bits need zero BRAMs")
	}
	if got := BRAMsFor(36*1024, 32); got != 1 {
		t.Errorf("36Kb at width 32 = %d BRAMs, want 1", got)
	}
	if got := BRAMsFor(2*36*1024, 32); got != 2 {
		t.Errorf("72Kb = %d BRAMs, want 2", got)
	}
	// Width-limited: 144-bit words need 2 BRAMs even for tiny depth.
	if got := BRAMsFor(144*4, 144); got != 2 {
		t.Errorf("width-limited BRAM count = %d, want 2", got)
	}
}

func TestDatapathPrimitives(t *testing.T) {
	if AdderLUTs(16) != 16 {
		t.Errorf("16-bit adder = %v LUTs, want 16", AdderLUTs(16))
	}
	if MultiplierLUTs(16) != 128 {
		t.Errorf("16x16 multiplier = %v LUTs, want 128", MultiplierLUTs(16))
	}
	if ComparatorLUTs(16) != 6 {
		t.Errorf("16-bit comparator = %v LUTs, want 6", ComparatorLUTs(16))
	}
	if RegisterLUTs(100) <= 0 {
		t.Error("register stage should have small positive cost")
	}
}

func TestHash64Deterministic(t *testing.T) {
	if Hash64("a", "b") != Hash64("a", "b") {
		t.Error("Hash64 not deterministic")
	}
	if Hash64("a", "b") == Hash64("ab") {
		t.Error("Hash64 should separate parts (a,b vs ab)")
	}
	if Hash64("a", "b") == Hash64("b", "a") {
		t.Error("Hash64 should be order-sensitive")
	}
}

func TestNoiseProperties(t *testing.T) {
	if Noise("k", 0) != 1 {
		t.Error("zero-fraction noise should be exactly 1")
	}
	if Noise("k", -0.1) != 1 {
		t.Error("negative fraction should disable noise")
	}
	if Noise("k", 0.05) != Noise("k", 0.05) {
		t.Error("noise not deterministic")
	}
	// Different keys should usually differ.
	same := 0
	for i := 0; i < 100; i++ {
		if Noise(fmt.Sprintf("k%d", i), 0.05) == Noise(fmt.Sprintf("j%d", i), 0.05) {
			same++
		}
	}
	if same > 2 {
		t.Errorf("%d/100 key pairs collided in noise", same)
	}
}

// Property: noise is always within [1-frac, 1+frac].
func TestQuickNoiseBounds(t *testing.T) {
	f := func(key string, rawFrac float64) bool {
		frac := math.Mod(math.Abs(rawFrac), 0.5)
		n := Noise(key, frac)
		return n >= 1-frac-1e-12 && n <= 1+frac+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: all primitive cost estimators are non-negative for non-negative
// arguments and monotone in each size argument.
func TestQuickCostsNonNegative(t *testing.T) {
	f := func(a, b uint8) bool {
		n, w := int(a%64)+1, int(b)+1
		costs := []float64{
			MuxLUTs(n, w), CrossbarLUTs(n, w), FIFOLUTs(n, w),
			RegisterLUTs(w), ArbiterLUTs(n), WavefrontAllocatorLUTs(n),
			AdderLUTs(w), MultiplierLUTs(w), ComparatorLUTs(w), ROMLUTs(n, w),
		}
		for _, c := range costs {
			if c < 0 || math.IsNaN(c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
