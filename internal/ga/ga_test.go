package ga

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nautilus/internal/metrics"
	"nautilus/internal/param"
)

// quadSpace is a 4-parameter space whose cost has a unique global minimum
// at a known point, with gentle curvature - easy for a GA, good for tests.
func quadSpace() (*param.Space, func(param.Point) (metrics.Metrics, error)) {
	s := param.MustSpace(
		param.Int("w", 0, 15, 1),
		param.Int("x", 0, 15, 1),
		param.Int("y", 0, 15, 1),
		param.Int("z", 0, 15, 1),
	)
	target := []int{3, 12, 7, 9}
	eval := func(pt param.Point) (metrics.Metrics, error) {
		cost := 1.0
		for i, tv := range target {
			d := float64(pt[i] - tv)
			cost += d * d
		}
		return metrics.Metrics{"cost": cost}, nil
	}
	return s, eval
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.PopulationSize != 10 || c.Generations != 80 || c.MutationRate != 0.1 {
		t.Errorf("paper defaults wrong: %+v", c)
	}
	if c.Elitism != 1 || c.TournamentSize != 2 || c.Parallelism != 1 {
		t.Errorf("defaults wrong: %+v", c)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{PopulationSize: 1, Generations: 5, MutationRate: 0.1, CrossoverRate: 0.5, TournamentSize: 1, Elitism: 0, Parallelism: 1},
		{PopulationSize: 10, Generations: -1, MutationRate: 0.1, CrossoverRate: 0.5, TournamentSize: 1, Elitism: 0, Parallelism: 1},
		{PopulationSize: 10, Generations: 5, MutationRate: 1.5, CrossoverRate: 0.5, TournamentSize: 1, Elitism: 0, Parallelism: 1},
		{PopulationSize: 10, Generations: 5, MutationRate: 0.1, CrossoverRate: -0.2, TournamentSize: 1, Elitism: 0, Parallelism: 1},
		{PopulationSize: 10, Generations: 5, MutationRate: 0.1, CrossoverRate: 0.5, TournamentSize: 11, Elitism: 0, Parallelism: 1},
		{PopulationSize: 10, Generations: 5, MutationRate: 0.1, CrossoverRate: 0.5, TournamentSize: 2, Elitism: 10, Parallelism: 1},
	}
	for i, c := range bad {
		if err := c.validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, c)
		}
	}
	s, eval := quadSpace()
	if _, err := New(nil, metrics.MinimizeMetric("cost"), eval, Config{}, nil); err == nil {
		t.Error("New(nil space) should fail")
	}
	if _, err := New(s, metrics.MinimizeMetric("cost"), nil, Config{}, nil); err == nil {
		t.Error("New(nil evaluator) should fail")
	}
}

func TestRunFindsOptimum(t *testing.T) {
	s, eval := quadSpace()
	e, err := New(s, metrics.MinimizeMetric("cost"), eval, Config{Seed: 42, Generations: 120}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run()
	if res.BestPoint == nil {
		t.Fatal("no feasible point found")
	}
	if res.BestValue > 3 {
		t.Errorf("best cost %v, want near-optimal (1)", res.BestValue)
	}
}

func TestRunDeterministic(t *testing.T) {
	s, eval := quadSpace()
	mk := func() Result {
		e, _ := New(s, metrics.MinimizeMetric("cost"), eval, Config{Seed: 7}, nil)
		return e.Run()
	}
	a, b := mk(), mk()
	if a.BestValue != b.BestValue || a.DistinctEvals != b.DistinctEvals {
		t.Fatalf("same seed diverged: %v/%d vs %v/%d", a.BestValue, a.DistinctEvals, b.BestValue, b.DistinctEvals)
	}
	if len(a.Trajectory) != len(b.Trajectory) {
		t.Fatal("trajectory lengths differ")
	}
	for i := range a.Trajectory {
		if a.Trajectory[i] != b.Trajectory[i] {
			t.Fatalf("trajectory diverges at %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	s, eval := quadSpace()
	run := func(seed int64) Result {
		e, _ := New(s, metrics.MinimizeMetric("cost"), eval, Config{Seed: seed, Generations: 3}, nil)
		return e.Run()
	}
	a, b := run(1), run(2)
	// Initial populations differ, so early trajectories should differ.
	same := true
	for i := range a.Trajectory {
		if i < len(b.Trajectory) && a.Trajectory[i] != b.Trajectory[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical trajectories")
	}
}

func TestTrajectoryShape(t *testing.T) {
	s, eval := quadSpace()
	e, _ := New(s, metrics.MinimizeMetric("cost"), eval, Config{Seed: 3, Generations: 20}, nil)
	res := e.Run()
	if len(res.Trajectory) != 21 {
		t.Fatalf("trajectory has %d points, want 21 (gen 0..20)", len(res.Trajectory))
	}
	prevEvals, prevVal := 0, math.Inf(1)
	for i, gp := range res.Trajectory {
		if gp.Generation != i {
			t.Fatalf("trajectory[%d].Generation = %d", i, gp.Generation)
		}
		if gp.DistinctEvals < prevEvals {
			t.Fatal("distinct evals decreased")
		}
		if gp.BestValue > prevVal {
			t.Fatal("best-so-far got worse (minimization)")
		}
		prevEvals, prevVal = gp.DistinctEvals, gp.BestValue
	}
	if res.Trajectory[0].DistinctEvals > e.Config().PopulationSize {
		t.Error("generation 0 should cost at most PopulationSize evals")
	}
	if res.DistinctEvals != res.Trajectory[len(res.Trajectory)-1].DistinctEvals {
		t.Error("final DistinctEvals mismatch")
	}
}

func TestDistinctEvalsLessThanTotalWork(t *testing.T) {
	// As the GA converges it revisits genomes; distinct evals must be well
	// below PopulationSize * Generations (the paper relies on this).
	s, eval := quadSpace()
	e, _ := New(s, metrics.MinimizeMetric("cost"), eval, Config{Seed: 5, Generations: 80}, nil)
	res := e.Run()
	totalWork := e.Config().PopulationSize * (e.Config().Generations + 1)
	if res.DistinctEvals >= totalWork/2 {
		t.Errorf("distinct evals %d vs total work %d: cache not reducing cost", res.DistinctEvals, totalWork)
	}
}

func TestInfeasibleRegionsSurvivable(t *testing.T) {
	// Half the space infeasible: GA must still find the optimum.
	s, eval := quadSpace()
	spiky := func(pt param.Point) (metrics.Metrics, error) {
		if pt[0]%2 == 1 {
			return nil, errors.New("infeasible stripe")
		}
		return eval(pt)
	}
	e, _ := New(s, metrics.MinimizeMetric("cost"), spiky, Config{Seed: 9, Generations: 100}, nil)
	res := e.Run()
	if res.BestPoint == nil {
		t.Fatal("no feasible point found in striped space")
	}
	// Optimum with even w: w=2 or 4 (|d|=1), cost 2.
	if res.BestValue > 5 {
		t.Errorf("best cost %v, want <= 5", res.BestValue)
	}
}

func TestAllInfeasibleYieldsNoBest(t *testing.T) {
	s, _ := quadSpace()
	e, _ := New(s, metrics.MinimizeMetric("cost"),
		func(param.Point) (metrics.Metrics, error) { return nil, errors.New("nope") },
		Config{Seed: 1, Generations: 3}, nil)
	res := e.Run()
	if res.BestPoint != nil {
		t.Error("BestPoint should be nil when nothing is feasible")
	}
	if !math.IsInf(res.BestValue, 1) {
		t.Errorf("BestValue = %v, want +Inf (worst for minimization)", res.BestValue)
	}
}

func TestParallelEvaluationMatchesSerial(t *testing.T) {
	s, eval := quadSpace()
	serial, _ := New(s, metrics.MinimizeMetric("cost"), eval, Config{Seed: 11, Parallelism: 1}, nil)
	parallel, _ := New(s, metrics.MinimizeMetric("cost"), eval, Config{Seed: 11, Parallelism: 8}, nil)
	a, b := serial.Run(), parallel.Run()
	if a.BestValue != b.BestValue || a.DistinctEvals != b.DistinctEvals {
		t.Errorf("parallel run diverged: %v/%d vs %v/%d", a.BestValue, a.DistinctEvals, b.BestValue, b.DistinctEvals)
	}
}

func TestMaximizationWorks(t *testing.T) {
	s, eval := quadSpace()
	// Maximize cost: optimum is a corner far from the target.
	e, _ := New(s, metrics.MaximizeMetric("cost"), eval, Config{Seed: 13, Generations: 120}, nil)
	res := e.Run()
	// Max cost = 1 + sum of max squared distances: 12^2+12^2+8^2... compute:
	// w: max(3,12) dist 12 -> 144; x: max(12,3) 12 -> 144; y: 8 -> 64 wait
	// y target 7: max dist = max(7, 15-7=8) = 8 -> 64; z target 9: max(9,6)=9 -> 81.
	want := 1.0 + 144 + 144 + 64 + 81
	if res.BestValue < want*0.9 {
		t.Errorf("max cost %v, want near %v", res.BestValue, want)
	}
}

func TestEvalsToReach(t *testing.T) {
	obj := metrics.MinimizeMetric("cost")
	res := Result{Trajectory: []GenPoint{
		{Generation: 0, DistinctEvals: 10, BestValue: 50},
		{Generation: 1, DistinctEvals: 15, BestValue: 20},
		{Generation: 2, DistinctEvals: 18, BestValue: 5},
	}}
	if got := res.EvalsToReach(obj, 25); got != 15 {
		t.Errorf("EvalsToReach(25) = %d, want 15", got)
	}
	if got := res.EvalsToReach(obj, 5); got != 18 {
		t.Errorf("EvalsToReach(5) = %d, want 18", got)
	}
	if got := res.EvalsToReach(obj, 1); got != -1 {
		t.Errorf("EvalsToReach(1) = %d, want -1", got)
	}
	// Worst-sentinel entries are skipped.
	res2 := Result{Trajectory: []GenPoint{
		{Generation: 0, DistinctEvals: 4, BestValue: math.Inf(1)},
		{Generation: 1, DistinctEvals: 8, BestValue: 30},
	}}
	if got := res2.EvalsToReach(obj, 40); got != 8 {
		t.Errorf("EvalsToReach over sentinel = %d, want 8", got)
	}
}

func TestBaselineMutationGenesRate(t *testing.T) {
	s, _ := quadSpace()
	b := Baseline{Space: s}
	r := rand.New(rand.NewSource(1))
	genome := make(param.Point, s.Len())
	total := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		total += len(b.MutationGenes(r, 0, genome, 0.1))
	}
	mean := float64(total) / trials // expect 0.4 genes per genome
	if mean < 0.35 || mean > 0.45 {
		t.Errorf("mean mutations %v, want ~0.4", mean)
	}
	// rate 0 -> never; rate 1 -> all genes.
	if len(b.MutationGenes(r, 0, genome, 0)) != 0 {
		t.Error("rate 0 should mutate nothing")
	}
	if len(b.MutationGenes(r, 0, genome, 1)) != s.Len() {
		t.Error("rate 1 should mutate every gene")
	}
}

func TestBaselineMutateValueNeverReturnsCurrent(t *testing.T) {
	s, _ := quadSpace()
	b := Baseline{Space: s}
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		cur := r.Intn(16)
		if v := b.MutateValue(r, 0, 0, cur); v == cur {
			t.Fatal("mutation returned the current value")
		}
	}
}

func TestBaselineMutateValueUniform(t *testing.T) {
	s, _ := quadSpace()
	b := Baseline{Space: s}
	r := rand.New(rand.NewSource(3))
	counts := make([]int, 16)
	const trials = 30000
	for i := 0; i < trials; i++ {
		counts[b.MutateValue(r, 0, 1, 7)]++
	}
	if counts[7] != 0 {
		t.Fatal("current value drawn")
	}
	for v, c := range counts {
		if v == 7 {
			continue
		}
		frac := float64(c) / trials
		if frac < 0.045 || frac > 0.09 { // expect 1/15 = 0.0667
			t.Errorf("value %d drawn with freq %v, want ~0.067", v, frac)
		}
	}
}

// Property: the GA never produces an invalid genome, for arbitrary seeds.
func TestQuickGenomesAlwaysValid(t *testing.T) {
	s, eval := quadSpace()
	f := func(seed int64) bool {
		valid := true
		checked := func(pt param.Point) (metrics.Metrics, error) {
			if err := s.Validate(pt); err != nil {
				valid = false
			}
			return eval(pt)
		}
		e, err := New(s, metrics.MinimizeMetric("cost"), checked, Config{Seed: seed, Generations: 5}, nil)
		if err != nil {
			return false
		}
		e.Run()
		return valid
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: best-so-far trajectories are monotone under any seed.
func TestQuickTrajectoryMonotone(t *testing.T) {
	s, eval := quadSpace()
	obj := metrics.MinimizeMetric("cost")
	f := func(seed int64) bool {
		e, err := New(s, obj, eval, Config{Seed: seed, Generations: 10}, nil)
		if err != nil {
			return false
		}
		res := e.Run()
		prev := math.Inf(1)
		for _, gp := range res.Trajectory {
			if gp.BestValue > prev {
				return false
			}
			prev = gp.BestValue
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestUniqueGenomesTracked(t *testing.T) {
	s, eval := quadSpace()
	e, _ := New(s, metrics.MinimizeMetric("cost"), eval, Config{Seed: 21, Generations: 60}, nil)
	res := e.Run()
	first := res.Trajectory[0].UniqueGenomes
	if first < 2 || first > e.Config().PopulationSize {
		t.Errorf("initial diversity %d implausible for population %d", first, e.Config().PopulationSize)
	}
	for _, gp := range res.Trajectory {
		if gp.UniqueGenomes < 1 || gp.UniqueGenomes > e.Config().PopulationSize {
			t.Fatalf("diversity %d out of range at gen %d", gp.UniqueGenomes, gp.Generation)
		}
	}
}

func TestConvergenceWindowStopsEarly(t *testing.T) {
	// A constant-fitness landscape: the population homogenizes fast under
	// elitism + selection; the run must stop well before 300 generations.
	s := param.MustSpace(param.Int("x", 0, 3, 1))
	flat := func(pt param.Point) (metrics.Metrics, error) {
		return metrics.Metrics{"cost": 1}, nil
	}
	e, err := New(s, metrics.MinimizeMetric("cost"), flat,
		Config{Seed: 2, Generations: 300, ConvergenceWindow: 5, MutationRate: 0.0001}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run()
	if !res.Converged {
		t.Fatal("run did not report convergence")
	}
	if last := res.Trajectory[len(res.Trajectory)-1].Generation; last >= 300 {
		t.Errorf("ran all %d generations despite convergence window", last)
	}
}

func TestConvergenceWindowDisabledByDefault(t *testing.T) {
	s, eval := quadSpace()
	e, _ := New(s, metrics.MinimizeMetric("cost"), eval, Config{Seed: 3, Generations: 25}, nil)
	res := e.Run()
	if res.Converged {
		t.Error("Converged set without a convergence window")
	}
	if len(res.Trajectory) != 26 {
		t.Errorf("trajectory length %d, want full 26", len(res.Trajectory))
	}
}

func TestConvergenceWindowFiresAtExactlyWindow(t *testing.T) {
	// A cardinality-1 space is homogeneous and stagnant from generation 0:
	// every genome is identical and the best can never move. The staleness
	// counter starts after the first generation establishes a baseline, so
	// the run must stop at exactly generation `window`.
	s := param.MustSpace(param.Int("x", 5, 5, 1))
	pinned := func(pt param.Point) (metrics.Metrics, error) {
		return metrics.Metrics{"cost": 7}, nil
	}
	const window = 4
	e, err := New(s, metrics.MinimizeMetric("cost"), pinned,
		Config{Seed: 1, Generations: 100, ConvergenceWindow: window}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run()
	if !res.Converged {
		t.Fatal("fully homogeneous run did not report convergence")
	}
	if last := res.Trajectory[len(res.Trajectory)-1].Generation; last != window {
		t.Errorf("converged at generation %d, want exactly %d", last, window)
	}
}

func TestConvergenceWindowZeroNeverFires(t *testing.T) {
	// Window 0 disables early stopping even on a population that is
	// homogeneous and stagnant for the entire run.
	s := param.MustSpace(param.Int("x", 5, 5, 1))
	pinned := func(pt param.Point) (metrics.Metrics, error) {
		return metrics.Metrics{"cost": 7}, nil
	}
	e, err := New(s, metrics.MinimizeMetric("cost"), pinned,
		Config{Seed: 1, Generations: 30, ConvergenceWindow: 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run()
	if res.Converged {
		t.Error("Converged set with ConvergenceWindow 0")
	}
	if got := len(res.Trajectory); got != 31 {
		t.Errorf("trajectory length %d, want full 31", got)
	}
}
