package ga

import (
	"testing"

	"nautilus/internal/metrics"
)

// BenchmarkRun measures one full baseline GA search over the quadratic toy
// space (80 generations, population 10) - the engine overhead excluding
// real synthesis cost.
func BenchmarkRun(b *testing.B) {
	b.ReportAllocs()
	s, eval := quadSpace()
	for i := 0; i < b.N; i++ {
		e, err := New(s, metrics.MinimizeMetric("cost"), eval, Config{Seed: int64(i)}, nil)
		if err != nil {
			b.Fatal(err)
		}
		e.Run()
	}
}

// BenchmarkRunParallel measures the same search with 8-way parallel fitness
// evaluation (the paper notes population size caps this parallelism).
func BenchmarkRunParallel(b *testing.B) {
	b.ReportAllocs()
	s, eval := quadSpace()
	for i := 0; i < b.N; i++ {
		e, err := New(s, metrics.MinimizeMetric("cost"), eval, Config{Seed: int64(i), Parallelism: 8}, nil)
		if err != nil {
			b.Fatal(err)
		}
		e.Run()
	}
}

// BenchmarkDispatchSingle and BenchmarkDispatchBatch compare the two
// evaluation dispatch modes on the same cache-heavy search (population 32
// converges quickly, so most dispatches are warm hits). Parallelism 4
// keeps the batch path engaged - at 1 worker adaptive dispatch collapses
// both modes onto the inline path.
func benchmarkDispatch(b *testing.B, dispatch string) {
	b.ReportAllocs()
	s, eval := quadSpace()
	for i := 0; i < b.N; i++ {
		e, err := New(s, metrics.MinimizeMetric("cost"), eval,
			Config{Seed: int64(i), PopulationSize: 32, Generations: 60, Parallelism: 4, Dispatch: dispatch}, nil)
		if err != nil {
			b.Fatal(err)
		}
		e.Run()
	}
}

func BenchmarkDispatchSingle(b *testing.B) { benchmarkDispatch(b, DispatchSingle) }
func BenchmarkDispatchBatch(b *testing.B)  { benchmarkDispatch(b, DispatchBatch) }
