package ga

import (
	"context"
	"reflect"
	"testing"

	"nautilus/internal/metrics"
	"nautilus/internal/param"
	"nautilus/internal/pareto"
)

// biSpace is a 3-parameter space with a genuine cost/quality trade-off on
// x and y (the whole (x, y) diagonal is Pareto-optimal at w=0) plus a
// pure-waste axis w that only adds cost, so only w=0 points sit on the
// front.
func biSpace() (*param.Space, func(param.Point) (metrics.Metrics, error), []metrics.Objective) {
	s := param.MustSpace(
		param.Int("x", 0, 15, 1),
		param.Int("y", 0, 7, 1),
		param.Int("w", 0, 3, 1),
	)
	eval := func(pt param.Point) (metrics.Metrics, error) {
		x, y, w := float64(pt[0]), float64(pt[1]), float64(pt[2])
		return metrics.Metrics{
			"cost":    10 + 3*x + y + 5*w,
			"quality": 1 + x + 0.25*y,
		}, nil
	}
	objs := []metrics.Objective{
		metrics.MinimizeMetric("cost"),
		metrics.MaximizeMetric("quality"),
	}
	return s, eval, objs
}

func biConfig(seed int64) Config {
	return Config{PopulationSize: 10, Generations: 25, Seed: seed, Parallelism: 1}
}

func TestNewMultiRejectsSingleObjective(t *testing.T) {
	s, eval, objs := biSpace()
	if _, err := NewMulti(s, objs[:1], eval, biConfig(1), nil); err == nil {
		t.Fatal("NewMulti should reject a single objective")
	}
	if _, err := NewMulti(s, objs, nil, biConfig(1), nil); err == nil {
		t.Fatal("NewMulti should reject a nil evaluator")
	}
}

func TestMultiFrontMutuallyNonDominating(t *testing.T) {
	s, eval, objs := biSpace()
	e, err := NewMulti(s, objs, eval, biConfig(42), nil)
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run()
	if len(res.Front) < 2 {
		t.Fatalf("front has %d members, want a real trade-off set", len(res.Front))
	}
	for i := range res.Front {
		for j := range res.Front {
			if i != j && pareto.DominatesValues(objs, res.Front[i].Values, res.Front[j].Values) {
				t.Errorf("front member %d dominates member %d: %v vs %v",
					i, j, res.Front[i].Values, res.Front[j].Values)
			}
		}
	}
	// Only w=0 points are Pareto-optimal in this space.
	for _, fp := range res.Front {
		if fp.Point[2] != 0 {
			t.Errorf("front member %v has waste w=%d, cannot be Pareto-optimal", fp.Point, fp.Point[2])
		}
	}
	// BestPoint/BestValue describe the primary-best (min cost) front member.
	if res.BestValue != res.Front[0].Values[0] {
		t.Errorf("BestValue %v != first (primary-best) front value %v", res.BestValue, res.Front[0].Values[0])
	}
	if res.Hypervolume <= 0 {
		t.Errorf("two-objective run should report positive hypervolume, got %v", res.Hypervolume)
	}
	if len(res.Nadir) != 2 {
		t.Fatalf("nadir = %v, want per-objective worst values", res.Nadir)
	}
	// Trajectory tracks the archive monotonically: the non-dominated set
	// over a growing point set can only grow in dominated area.
	prevHV := 0.0
	for _, gp := range res.Trajectory {
		if gp.FrontSize <= 0 {
			t.Fatalf("generation %d has empty front", gp.Generation)
		}
		if gp.Hypervolume < prevHV {
			t.Fatalf("hypervolume shrank at generation %d: %v -> %v", gp.Generation, prevHV, gp.Hypervolume)
		}
		prevHV = gp.Hypervolume
	}
}

// TestMultiByteIdentical pins the determinism contract for pareto mode:
// the full Result - front, hypervolume, nadir, trajectory, cache stats -
// is deeply identical across parallelism levels, key modes, and dispatch
// modes.
func TestMultiByteIdentical(t *testing.T) {
	s, eval, objs := biSpace()
	run := func(par int, keyMode string, dispatch string) Result {
		cfg := biConfig(7)
		cfg.Parallelism = par
		cfg.KeyMode = keyMode
		cfg.Dispatch = dispatch
		e, err := NewMulti(s, objs, eval, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		return e.Run()
	}
	ref := run(1, KeyModeHash, DispatchBatch)
	for _, par := range []int{1, 8} {
		for _, km := range []string{KeyModeHash, KeyModeString} {
			for _, disp := range []string{DispatchBatch, DispatchSingle} {
				got := run(par, km, disp)
				if !reflect.DeepEqual(got, ref) {
					t.Fatalf("par=%d key=%q dispatch=%q diverged from reference:\n got %+v\nwant %+v",
						par, km, disp, got, ref)
				}
			}
		}
	}
}

// TestMultiMigrationShipsFrontMembers proves the migration contract
// composes with pareto mode: emigrants are selected by the stable fitness
// sort, which under NSGA-II fitness means the least-crowded rank-0
// members - so a pareto island automatically ships front members.
func TestMultiMigrationShipsFrontMembers(t *testing.T) {
	s, eval, objs := biSpace()
	var shipped [][]Migrant
	cfg := biConfig(11)
	cfg.Migration = &Migration{
		Interval: 5,
		Count:    2,
		Exchange: func(ctx context.Context, gen int, out []Migrant) ([]Migrant, error) {
			cp := make([]Migrant, len(out))
			for i, m := range out {
				cp[i] = Migrant{Genome: m.Genome.Clone()}
			}
			shipped = append(shipped, cp)
			return nil, nil
		},
	}
	e, err := NewMulti(s, objs, eval, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	if len(shipped) == 0 {
		t.Fatal("no migration rounds fired")
	}
	valsOf := func(g param.Point) []float64 {
		m, err := eval(g)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, len(objs))
		for i, o := range objs {
			v, ok := o.Value(m)
			if !ok {
				t.Fatalf("emigrant %v infeasible", g)
			}
			out[i] = v
		}
		return out
	}
	for round, out := range shipped {
		for i := range out {
			for j := range out {
				if i == j {
					continue
				}
				if pareto.DominatesValues(objs, valsOf(out[i].Genome), valsOf(out[j].Genome)) {
					t.Errorf("round %d: emigrant %d dominates emigrant %d - not a front pair",
						round, i, j)
				}
			}
		}
	}
}

// TestMultiResumeByteIdentical interrupts a pareto run at checkpoint
// boundaries and proves the resumed run - including the archive rebuilt
// from the restored cache - matches the uninterrupted run deeply.
func TestMultiResumeByteIdentical(t *testing.T) {
	s, eval, objs := biSpace()
	mkCfg := func() Config {
		cfg := biConfig(3)
		cfg.Parallelism = 4
		return cfg
	}
	ref, err := func() (Result, error) {
		e, err := NewMulti(s, objs, eval, mkCfg(), nil)
		if err != nil {
			return Result{}, err
		}
		return e.RunContext(context.Background())
	}()
	if err != nil {
		t.Fatal(err)
	}

	for _, killAfter := range []int{0, 4, 12} {
		ctx, cancel := context.WithCancel(context.Background())
		var last *Snapshot
		cfg := mkCfg()
		cfg.Checkpoint = func(snap *Snapshot) error {
			last = snap
			if snap.Generation > killAfter {
				cancel()
			}
			return nil
		}
		ie, err := NewMulti(s, objs, eval, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		partial, err := ie.RunContext(ctx)
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		if !partial.Interrupted {
			t.Fatalf("killAfter=%d: run was not interrupted", killAfter)
		}
		if last == nil {
			t.Fatalf("killAfter=%d: no checkpoint written", killAfter)
		}

		rcfg := mkCfg()
		rcfg.Resume = last
		re, err := NewMulti(s, objs, eval, rcfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		resumed, err := re.RunContext(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(resumed, ref) {
			t.Fatalf("killAfter=%d: resumed result diverged:\n got %+v\nwant %+v", killAfter, resumed, ref)
		}
	}
}
