package ga

import (
	"context"
	"sort"

	"nautilus/internal/param"
)

// Migrant is one genome in flight between islands of an island-model
// search. Only the genome travels: the receiving island re-evaluates it
// through its own cache, which is exactly what makes cluster-wide cache
// dedup observable (the migrant's design point is already characterized
// somewhere, so the lookup is a remote hit, not a new synthesis job).
type Migrant struct {
	Genome param.Point
}

// MigrantExchange ships an island's emigrants for one scheduled exchange
// and returns its immigrants. gen is the generation the immigrants will
// join (the first generation bred after the exchange). Implementations
// must be deterministic in (gen, out) for byte-identical runs - in a
// cluster the pairing of islands per exchange is a pure function of
// (seed, generation, topology) - and must never block indefinitely: on
// timeout or transport failure they return an error and the island
// continues unaided, which is the partition-degradation contract the
// faultnet tests pin down.
type MigrantExchange func(ctx context.Context, gen int, out []Migrant) ([]Migrant, error)

// Migration configures island-model migrant exchange for a run. A run
// with a nil Migration (the default) is a plain panmictic GA; with one,
// the run becomes a single island that every Interval generations ships
// its Count best genomes to the exchange and injects whatever comes back.
//
// Determinism contract: migration never draws from the run RNG. Emigrant
// selection is a pure sort of the evaluated population (fitness
// descending, stable index tie-break), and immigrants overwrite the
// *last* bred slots of the next generation - after breeding has consumed
// its draws - so the RNG sequence is byte-identical whether an exchange
// returns migrants, returns nothing, or fails. Disabling migration
// therefore changes population contents only, never the draw stream.
type Migration struct {
	// Interval is the generation cadence: generation g receives migrants
	// iff g > 0 and g % Interval == 0 (default 5).
	Interval int
	// Count is how many emigrants each exchange ships (default 1). Must
	// leave at least the elite slots untouched: Count <= PopulationSize -
	// Elitism.
	Count int
	// Exchange performs the migrant swap. Required.
	Exchange MigrantExchange
}

// withDefaults returns a defaulted copy (the caller's struct is never
// mutated).
func (m *Migration) withDefaults() *Migration {
	d := *m
	if d.Interval == 0 {
		d.Interval = 5
	}
	if d.Count == 0 {
		d.Count = 1
	}
	return &d
}

// due reports whether generation gen is a scheduled exchange boundary.
func (m *Migration) due(gen int) bool {
	return gen > 0 && gen%m.Interval == 0
}

// migrate runs one scheduled exchange: the Count best evaluated genomes
// of pop go out, and whatever comes back overwrites the last non-elite
// slots of next (already fully bred, so no RNG draw is displaced). An
// exchange error or empty return leaves next exactly as bred - the
// island continues unaided.
func (e *Engine) migrate(ctx context.Context, gen int, pop, next []individual) {
	mig := e.cfg.Migration
	in, err := mig.Exchange(ctx, gen, e.emigrants(pop, mig.Count))
	if err != nil || len(in) == 0 {
		return
	}
	if maxIn := len(next) - e.cfg.Elitism; len(in) > maxIn {
		in = in[:maxIn]
	}
	slot := len(next) - 1
	for _, m := range in {
		// Immigrants are wire data in a cluster: validate before adoption.
		if !e.validGenome(m.Genome) {
			continue
		}
		copy(next[slot].genome, m.Genome)
		next[slot].hash = e.space.Hash64(next[slot].genome)
		next[slot].key = "" // stale slot state from two generations ago
		slot--
	}
}

// emigrants clones the count best genomes of the evaluated population,
// fitness descending with a stable index tie-break - deterministic, and
// cloned out of the generation arena so the exchange may retain them.
func (e *Engine) emigrants(pop []individual, count int) []Migrant {
	if count > len(pop) {
		count = len(pop)
	}
	idx := make([]int, len(pop))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return pop[idx[a]].fitness > pop[idx[b]].fitness
	})
	out := make([]Migrant, count)
	for k := 0; k < count; k++ {
		out[k] = Migrant{Genome: pop[idx[k]].genome.Clone()}
	}
	return out
}

// validGenome accepts a genome iff it indexes this engine's space.
func (e *Engine) validGenome(g param.Point) bool {
	if len(g) != e.space.Len() {
		return false
	}
	for i, v := range g {
		if v < 0 || v >= e.space.Param(i).Card() {
			return false
		}
	}
	return true
}
