// Package ga implements the baseline genetic algorithm used for IP
// parameter optimization - the role PyEvolve plays in the Nautilus paper.
//
// A genome is a param.Point (one value index per IP parameter). Each
// generation, the engine evaluates the population's fitness through a
// caching evaluator (so search cost is counted in *distinct* design points,
// the paper's metric), then forms the next generation from elites plus
// children bred by selection (rank-roulette by default, tournament as an
// option), crossover (single-point by default), and per-gene mutation.
//
// The mutation operator is split into two pluggable decisions - which genes
// mutate, and what value a mutated gene receives. The baseline implements
// both uniformly at random; package core (Nautilus) supplies hint-guided
// implementations of the same interface, exactly mirroring how the paper
// layers author guidance onto an unmodified GA skeleton.
package ga

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"nautilus/internal/dataset"
	"nautilus/internal/metrics"
	"nautilus/internal/param"
	"nautilus/internal/pareto"
	"nautilus/internal/pool"
	"nautilus/internal/telemetry"
	"nautilus/internal/telemetry/trace"
)

// Selection schemes. The default, rank-based roulette, matches the
// PyEvolve-style engine the paper built on; tournament selection is offered
// as a stronger-pressure alternative for ablations.
const (
	SelectRankRoulette = "rank_roulette"
	SelectTournament   = "tournament"
)

// Crossover operators. Single-point is the PyEvolve-style default; uniform
// and two-point are offered for ablations.
const (
	CrossoverSinglePoint = "single_point"
	CrossoverTwoPoint    = "two_point"
	CrossoverUniform     = "uniform"
)

// Config holds the GA's run settings. The zero value is completed by
// defaults matching the paper's setup: population 10, per-gene mutation
// rate 0.1, 80 generations, rank-roulette selection with single-point
// crossover (the PyEvolve-style engine both the paper's baseline and
// Nautilus are built on).
type Config struct {
	// PopulationSize is the number of genomes per generation (default 10).
	PopulationSize int
	// Generations is how many generations to run (default 80).
	Generations int
	// MutationRate is the per-gene mutation probability (default 0.1).
	MutationRate float64
	// CrossoverRate is the probability a child is bred from two parents
	// rather than cloned from one (default 0.9).
	CrossoverRate float64
	// Selection picks the parent-selection scheme (default
	// SelectRankRoulette).
	Selection string
	// Crossover picks the crossover operator (default CrossoverSinglePoint).
	Crossover string
	// TournamentSize is the selection tournament size, used only with
	// SelectTournament (default 2).
	TournamentSize int
	// Elitism is how many best genomes survive unchanged (default 1).
	Elitism int
	// Seed seeds the run's random stream; runs are fully deterministic in
	// (Seed, Config, Strategy, evaluator).
	Seed int64
	// Parallelism is the number of concurrent fitness evaluations
	// (default 1). The paper notes population size caps this parallelism.
	Parallelism int
	// ConvergenceWindow, when positive, stops the run early once the best
	// value has not improved AND the population has stayed fully
	// homogeneous for this many consecutive generations - the point at
	// which further generations only revisit cached designs. 0 disables
	// early stopping (the paper's fixed-generation methodology).
	ConvergenceWindow int
	// Recorder receives structured telemetry events (per-generation stats,
	// per-individual evaluations, cache lookups, pool scheduling). nil
	// defaults to telemetry.Nop, which is free. Recording is purely
	// observational: it never draws from the run's RNG, so results are
	// identical with telemetry on or off. The recorder must be safe for
	// concurrent use when Parallelism > 1.
	Recorder telemetry.Recorder
	// Tracer receives latency spans: a ga.generation root per generation
	// with a ga.dispatch child around evaluation, pre-measured
	// ga.selection / ga.crossover / ga.mutation breeding phases, and the
	// cache's batch-resolve phases underneath. nil disables tracing at the
	// cost of one boolean test per phase. Like the Recorder, tracing is
	// purely observational - span IDs come from the tracer's own seeded
	// stream, never the run RNG - so results are byte-identical with
	// tracing on or off.
	Tracer *trace.Tracer
	// Checkpoint, when non-nil, receives a full resumable Snapshot of the
	// run at generation boundaries: every CheckpointEvery generations, and
	// once more when the run context is canceled (after the evaluation pool
	// has drained). A Checkpoint error aborts the run. Checkpointing never
	// draws from the run RNG, so results are byte-identical with it on or
	// off.
	Checkpoint func(*Snapshot) error
	// CheckpointEvery is the generation cadence for Checkpoint calls
	// (default 1 = every generation boundary). Ignored when Checkpoint is
	// nil.
	CheckpointEvery int
	// Resume, when non-nil, starts the run from a Snapshot previously
	// produced by Checkpoint instead of generation 0. The snapshot's seed
	// and population size must match the configuration; the resumed run's
	// Result is byte-identical to an uninterrupted run's.
	Resume *Snapshot
	// Dispatch selects how a generation's evaluations reach the cache:
	// DispatchBatch (the default) submits the whole generation as one
	// batch - deduplicated in a single sharded pass, misses fanned out
	// together - while DispatchSingle keeps the legacy one-lookup-per-point
	// path. Both produce byte-identical Results and cache stats; single
	// remains selectable for comparison benchmarks and equivalence tests.
	Dispatch string
	// BatchSize caps how many individuals each batch carries under
	// DispatchBatch. 0 (the default) submits the whole generation at once;
	// smaller sizes chunk the generation into ceil(population/BatchSize)
	// batches. Results are identical at any batch size.
	BatchSize int
	// BatchBackend, when non-nil, receives the cache's residual misses as
	// whole batches instead of the cache fanning them out over the
	// single-point evaluator - the hook a layered cache (e.g. the server's
	// process-wide shared cache) uses to coalesce in-flight batches across
	// sessions.
	BatchBackend dataset.BatchEvaluator
	// Migration, when non-nil, makes the run one island of an island-model
	// search: every Migration.Interval generations the island's best
	// genomes are shipped through Migration.Exchange and the returned
	// immigrants overwrite the last non-elite slots of the freshly bred
	// generation. Migration never draws from the run RNG (see the
	// Migration type's determinism contract), so a run with an exchange
	// that returns nothing is byte-identical to one with Migration nil.
	Migration *Migration
	// KeyMode selects how the run's cache identifies design points:
	// KeyModeHash (the default) dispatches on 64-bit genome hashes with no
	// string key anywhere on the hot path, KeyModeString keeps the legacy
	// canonical-key representation. Both produce byte-identical Results,
	// cache stats, and checkpoints; string mode remains selectable for
	// comparison benchmarks and equivalence tests.
	KeyMode string
}

// Dispatch modes for Config.Dispatch.
const (
	// DispatchBatch submits each generation as one deduplicated batch.
	DispatchBatch = "batch"
	// DispatchSingle dispatches evaluations one cache lookup at a time
	// (the pre-batching pipeline, kept for comparison).
	DispatchSingle = "single"
)

// Key modes for Config.KeyMode.
const (
	// KeyModeHash identifies design points by 64-bit genome hash
	// (param.Space.Hash64) - the key-free hot path.
	KeyModeHash = "hash"
	// KeyModeString identifies design points by canonical string key (the
	// pre-hashing pipeline, kept for comparison).
	KeyModeString = "string"
)

// withDefaults returns cfg with zero fields replaced by paper defaults.
func (c Config) withDefaults() Config {
	if c.PopulationSize == 0 {
		c.PopulationSize = 10
	}
	if c.Generations == 0 {
		c.Generations = 80
	}
	if c.MutationRate == 0 {
		c.MutationRate = 0.1
	}
	if c.CrossoverRate == 0 {
		c.CrossoverRate = 0.9
	}
	if c.Selection == "" {
		c.Selection = SelectRankRoulette
	}
	if c.Crossover == "" {
		c.Crossover = CrossoverSinglePoint
	}
	if c.TournamentSize == 0 {
		c.TournamentSize = 2
	}
	if c.Elitism == 0 {
		c.Elitism = 1
	}
	if c.Parallelism == 0 {
		c.Parallelism = 1
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 1
	}
	if c.Dispatch == "" {
		c.Dispatch = DispatchBatch
	}
	if c.KeyMode == "" {
		c.KeyMode = KeyModeHash
	}
	if c.Recorder == nil {
		c.Recorder = telemetry.Nop
	}
	if c.Migration != nil {
		c.Migration = c.Migration.withDefaults()
	}
	return c
}

// validate rejects unusable configurations.
func (c Config) validate() error {
	if c.PopulationSize < 2 {
		return fmt.Errorf("ga: population size %d < 2", c.PopulationSize)
	}
	if c.Generations < 1 {
		return fmt.Errorf("ga: generations %d < 1", c.Generations)
	}
	if c.MutationRate < 0 || c.MutationRate > 1 {
		return fmt.Errorf("ga: mutation rate %v outside [0,1]", c.MutationRate)
	}
	if c.CrossoverRate < 0 || c.CrossoverRate > 1 {
		return fmt.Errorf("ga: crossover rate %v outside [0,1]", c.CrossoverRate)
	}
	if c.TournamentSize < 1 || c.TournamentSize > c.PopulationSize {
		return fmt.Errorf("ga: tournament size %d outside [1, population]", c.TournamentSize)
	}
	switch c.Selection {
	case SelectRankRoulette, SelectTournament:
	default:
		return fmt.Errorf("ga: unknown selection scheme %q", c.Selection)
	}
	switch c.Crossover {
	case CrossoverSinglePoint, CrossoverTwoPoint, CrossoverUniform:
	default:
		return fmt.Errorf("ga: unknown crossover operator %q", c.Crossover)
	}
	if c.Elitism < 0 || c.Elitism >= c.PopulationSize {
		return fmt.Errorf("ga: elitism %d outside [0, population)", c.Elitism)
	}
	if c.Parallelism < 1 {
		return fmt.Errorf("ga: parallelism %d < 1", c.Parallelism)
	}
	if c.CheckpointEvery < 0 {
		return fmt.Errorf("ga: checkpoint interval %d < 0", c.CheckpointEvery)
	}
	switch c.Dispatch {
	case DispatchBatch, DispatchSingle:
	default:
		return fmt.Errorf("ga: unknown dispatch mode %q", c.Dispatch)
	}
	switch c.KeyMode {
	case KeyModeHash, KeyModeString:
	default:
		return fmt.Errorf("ga: unknown key mode %q", c.KeyMode)
	}
	if c.BatchSize < 0 {
		return fmt.Errorf("ga: batch size %d < 0", c.BatchSize)
	}
	if m := c.Migration; m != nil {
		if m.Exchange == nil {
			return fmt.Errorf("ga: migration without an exchange")
		}
		if m.Interval < 1 {
			return fmt.Errorf("ga: migration interval %d < 1", m.Interval)
		}
		if m.Count < 1 || m.Count > c.PopulationSize-c.Elitism {
			return fmt.Errorf("ga: migration count %d outside [1, population-elitism]", m.Count)
		}
	}
	return nil
}

// Strategy decides which genes mutate and what values they receive - the
// two operator decisions Nautilus hints act on. Implementations may be
// stateful per run but must be deterministic given the rand stream.
type Strategy interface {
	// MutationGenes returns the gene indices to mutate for one genome this
	// generation. rate is the configured per-gene mutation rate.
	MutationGenes(r *rand.Rand, gen int, genome param.Point, rate float64) []int
	// MutateValue returns the new value index for gene g of the genome
	// (current is the present index).
	MutateValue(r *rand.Rand, gen int, g, current int) int
}

// Baseline is the unguided Strategy: every gene is equally likely to
// mutate, and a mutated gene takes a uniformly random different value.
type Baseline struct {
	Space *param.Space
}

// MutationGenes flips an independent coin per gene at the configured rate.
func (b Baseline) MutationGenes(r *rand.Rand, gen int, genome param.Point, rate float64) []int {
	var genes []int
	for g := range genome {
		if r.Float64() < rate {
			genes = append(genes, g)
		}
	}
	return genes
}

// MutateValue draws a uniform different value for the gene.
func (b Baseline) MutateValue(r *rand.Rand, gen int, g, current int) int {
	card := b.Space.Param(g).Card()
	if card <= 1 {
		return current
	}
	v := r.Intn(card - 1)
	if v >= current {
		v++
	}
	return v
}

// GenPoint is one sample of a search trajectory: the cumulative number of
// distinct designs evaluated after a generation, the best objective value
// found so far, and the population's genomic diversity.
type GenPoint struct {
	Generation    int
	DistinctEvals int
	BestValue     float64 // objective value; Worst() if nothing feasible yet
	// UniqueGenomes counts distinct genomes in the population this
	// generation - the diversity signal that collapses as the GA
	// converges and starts revisiting cached designs.
	UniqueGenomes int
	// FrontSize and Hypervolume track the non-dominated archive in
	// multi-objective (pareto) runs: the archive's cardinality after this
	// generation and, for exactly two objectives, the dominated area
	// relative to a nadir-derived reference. Zero in scalar runs.
	FrontSize   int     `json:",omitempty"`
	Hypervolume float64 `json:",omitempty"`
}

// Result summarizes one GA run.
type Result struct {
	// BestPoint is the best design found (nil if nothing feasible).
	BestPoint param.Point
	// BestValue is its objective value.
	BestValue float64
	// Trajectory has one entry per generation (including generation 0, the
	// initial population).
	Trajectory []GenPoint
	// DistinctEvals is the total number of distinct designs evaluated -
	// the paper's cost metric.
	DistinctEvals int
	// Converged reports whether the run stopped early via
	// Config.ConvergenceWindow.
	Converged bool
	// Interrupted reports that the run context was canceled before the
	// search finished: the evaluation pool drained, a final checkpoint was
	// written (when configured), and the fields above describe the search
	// up to the last completed generation.
	Interrupted bool
	// Cache is the run's evaluation-cache accounting (distinct, total,
	// hits, hit rate). Deterministic in (Seed, Config, Strategy,
	// evaluator) like every other Result field.
	Cache dataset.CacheStats
	// Front is the final non-dominated archive over every feasible design
	// the run evaluated, in canonical order (multi-objective runs only;
	// see NewMultiContext). BestPoint/BestValue then describe the front
	// member that is best on the primary objective.
	Front []pareto.FrontPoint `json:",omitempty"`
	// Hypervolume is Front's dominated area relative to a reference
	// derived from Nadir (exactly two objectives; 0 otherwise).
	Hypervolume float64 `json:",omitempty"`
	// Nadir holds the per-objective worst feasible values observed across
	// the whole run - the anchor for Hypervolume's reference point.
	Nadir []float64 `json:",omitempty"`
	// Portfolio lists per-strategy outcomes when this result was produced
	// by a portfolio race (core.ModePortfolio); nil otherwise.
	Portfolio []StrategyOutcome `json:",omitempty"`
}

// StrategyOutcome reports one strategy's contribution to a portfolio race:
// its private best, its private evaluation accounting, and whether the
// deterministic merge picked it as the winner.
type StrategyOutcome struct {
	Strategy      string  `json:"strategy"`
	BestValue     float64 `json:"best_value"`
	Feasible      bool    `json:"feasible"`
	DistinctEvals int     `json:"distinct_evals"`
	Converged     bool    `json:"converged"`
	Winner        bool    `json:"winner"`
}

// EvalsToReach returns the number of distinct evaluations after which the
// trajectory first reaches a value at least as good as target under obj,
// or -1 if it never does.
func (res Result) EvalsToReach(obj metrics.Objective, target float64) int {
	for _, gp := range res.Trajectory {
		if gp.BestValue == obj.Worst() {
			continue
		}
		if !obj.Better(target, gp.BestValue) { // BestValue >= target
			return gp.DistinctEvals
		}
	}
	return -1
}

// Engine runs genetic searches over a design space.
type Engine struct {
	space    *param.Space
	obj      metrics.Objective
	cache    *dataset.Cache
	cfg      Config
	strategy Strategy
	rec      telemetry.Recorder
	tracer   *trace.Tracer
	// tracing caches tracer.Enabled() so breeding-phase clock reads cost
	// one boolean test when tracing is off.
	tracing bool
	// phaseSel/phaseCx/phaseMut accumulate breeding-phase wall time across
	// one generation's breedInto calls, emitted as pre-measured spans at
	// the generation boundary. Touched only when tracing.
	phaseSel, phaseCx, phaseMut time.Duration
	// seen is the scratch map for per-generation genome-diversity counting,
	// reused across generations to keep the hot loop allocation-free. It
	// counts genome hashes in both key modes, so UniqueGenomes is trivially
	// byte-identical across them.
	seen map[uint64]struct{}
	// batchKeys/batchHashes/batchPts are the batch dispatch path's reusable
	// request buffers, sized once per run to keep batching allocation-free
	// too. Exactly one of keys/hashes is used, per the key mode.
	batchKeys   []string
	batchHashes []uint64
	batchPts    []param.Point
	// order is the elite-selection scratch permutation, reused across
	// generations.
	order []int
	// objs is the full objective vector in multi-objective (pareto) runs;
	// nil in scalar runs. objs[0] is the primary objective and aliases
	// e.obj, so every scalar reporting path speaks the primary objective.
	objs []metrics.Objective
	// mvVals/mvOK/mvRanks/mvCrowd are the NSGA-II scratch buffers for
	// per-generation rank/crowding assignment, reused across generations.
	mvVals  [][]float64
	mvOK    []bool
	mvRanks []int
	mvCrowd []float64
}

// New builds an Engine. eval is the raw (uncached) evaluator; the engine
// wraps it in a distinct-evaluation-counting cache per run. strategy nil
// selects the unguided Baseline.
func New(space *param.Space, obj metrics.Objective, eval dataset.Evaluator, cfg Config, strategy Strategy) (*Engine, error) {
	if eval == nil {
		return nil, fmt.Errorf("ga: nil space or evaluator")
	}
	return NewContext(space, obj, dataset.AdaptContext(eval), cfg, strategy)
}

// NewContext is New for a context-aware evaluator: the run context reaches
// each evaluation through the cache's singleflight path, so supervised
// evaluators (internal/resilience) can honor per-evaluation deadlines and
// run-level cancellation.
func NewContext(space *param.Space, obj metrics.Objective, eval dataset.ContextEvaluator, cfg Config, strategy Strategy) (*Engine, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if space == nil || eval == nil {
		return nil, fmt.Errorf("ga: nil space or evaluator")
	}
	if strategy == nil {
		strategy = Baseline{Space: space}
	}
	cache := dataset.NewCacheContext(space, eval)
	if cfg.KeyMode == KeyModeString {
		cache.SetKeyMode(dataset.KeyModeString)
	}
	cache.SetRecorder(cfg.Recorder)
	cache.SetTracer(cfg.Tracer)
	if cfg.BatchBackend != nil {
		cache.SetBatchBackend(cfg.BatchBackend)
	}
	return &Engine{
		space:    space,
		obj:      obj,
		cache:    cache,
		cfg:      cfg,
		strategy: strategy,
		rec:      cfg.Recorder,
		tracer:   cfg.Tracer,
		tracing:  cfg.Tracer.Enabled(),
	}, nil
}

// Config returns the engine's effective (defaulted) configuration.
func (e *Engine) Config() Config { return e.cfg }

type individual struct {
	// genome is a subslice of the run's flat genome arena (never an owned
	// allocation); anything retaining it beyond the generation - the best-
	// so-far individual, checkpoints - must clone it out.
	genome param.Point
	// hash is the genome's 64-bit identity (param.Space.Hash64), computed
	// eagerly whenever the genome is (re)written. It drives hash-mode cache
	// dispatch and the diversity count in both key modes.
	hash uint64
	// key caches space.Key(genome) in string key mode; filled lazily at
	// evaluation and carried along when an elite genome survives unchanged.
	// Always empty in hash mode - no string key exists on that path.
	key     string
	fitness float64
	value   float64
	ok      bool
	// vals holds the individual's objective-value vector in multi-objective
	// runs (a per-slot scratch buffer reused across generations); nil in
	// scalar runs.
	vals []float64
}

// genomeArenas pools the flat []int backing arrays population genomes live
// in, so repeated runs (and the two per-run generation buffers) reuse the
// same storage instead of allocating one slice per individual per
// generation.
var genomeArenas sync.Pool

// getArena returns a flat arena of at least n ints.
func getArena(n int) []int {
	if v, ok := genomeArenas.Get().(*[]int); ok && cap(*v) >= n {
		return (*v)[:n]
	}
	return make([]int, n)
}

// putArena recycles an arena. The caller must not retain any subslice.
func putArena(a []int) {
	genomeArenas.Put(&a)
}

// bindArena points each individual's genome at its stride-L window of the
// arena. Genome contents are whatever the arena last held; every slot is
// overwritten before use.
func bindArena(pop []individual, arena []int, l int) {
	for i := range pop {
		pop[i].genome = param.Point(arena[i*l : (i+1)*l : (i+1)*l])
	}
}

// Run executes one full GA search and returns its result. The engine's
// evaluation cache is reset per run; the paper's experiments use fresh
// caches per run.
func (e *Engine) Run() Result {
	res, err := e.RunContext(context.Background())
	if err != nil {
		// Without Checkpoint or Resume configured, RunContext cannot fail;
		// misconfigured resume state is a programming error here.
		panic(err)
	}
	return res
}

// RunContext is Run under a context. Cancellation stops the search at the
// nearest generation boundary: in-flight evaluations drain, a final
// checkpoint is written when Config.Checkpoint is set, and the partial
// result comes back with Interrupted set. The only error sources are a
// failing Checkpoint call and an invalid Resume snapshot.
func (e *Engine) RunContext(ctx context.Context) (Result, error) {
	src := newCountingSource(e.cfg.Seed)
	r := rand.New(src)

	// mv carries the multi-objective run state (non-dominated archive +
	// running nadir); nil in scalar runs, so the scalar hot path is
	// untouched.
	mv := e.newMultiState()
	best := individual{fitness: math.Inf(-1), value: e.obj.Worst()}
	var pop []individual
	var trajectory []GenPoint
	converged := false
	interrupted := false
	stale := 0
	prevBest := math.Inf(-1)
	startGen := 0

	// Population genomes live in two flat arenas ping-ponged between
	// generations (parents in one, children bred into the other), pooled
	// across runs: after warm-up a generation allocates no per-individual
	// slices at all.
	l := e.space.Len()
	n := e.cfg.PopulationSize
	arenas := [2][]int{getArena(n * l), getArena(n * l)}
	popBufs := [2][]individual{make([]individual, n), make([]individual, n)}
	bindArena(popBufs[0], arenas[0], l)
	bindArena(popBufs[1], arenas[1], l)
	cur := 0
	pop = popBufs[0]
	defer func() {
		putArena(arenas[0])
		putArena(arenas[1])
	}()

	if snap := e.cfg.Resume; snap != nil {
		if err := e.validateResume(snap); err != nil {
			return Result{}, err
		}
		if err := e.cache.Restore(snap.Cache); err != nil {
			return Result{}, err
		}
		src.fastForward(snap.Draws)
		for i, g := range snap.Population {
			copy(pop[i].genome, g)
			pop[i].hash = e.space.Hash64(pop[i].genome)
		}
		if snap.Best != nil {
			best = individual{
				genome:  snap.Best.Clone(),
				fitness: snap.BestFitness,
				value:   snap.BestValue,
				ok:      true,
			}
		}
		trajectory = append(trajectory, snap.Trajectory...)
		stale = snap.Stale
		prevBest = snap.PrevBest
		startGen = snap.Generation
		if mv != nil {
			// The archive is a pure function of the set of evaluated points,
			// so it is rebuilt from the restored cache rather than persisted:
			// resumed runs rejoin the uninterrupted run's archive exactly.
			if err := mv.rebuild(e.space, snap.Cache); err != nil {
				return Result{}, err
			}
		}
	} else {
		e.cache.Reset()
		for i := range pop {
			e.space.RandomInto(r, pop[i].genome)
			pop[i].hash = e.space.Hash64(pop[i].genome)
		}
	}

	// Telemetry is observational only: wall-clock timing and the
	// per-generation record are built solely when a live recorder asks for
	// them, and nothing here touches r, so runs are byte-identical with
	// telemetry on or off.
	recording := e.rec.Enabled()
	checkpointing := e.cfg.Checkpoint != nil

	// boundary is the resumable state at the start of the generation being
	// evaluated; on cancellation it becomes the final checkpoint, so a kill
	// mid-generation loses no completed work.
	var boundary *Snapshot

	for gen := startGen; gen <= e.cfg.Generations; gen++ {
		if checkpointing {
			boundary = e.snapshot(gen, src.draws, pop, best, stale, prevBest, trajectory)
			if gen != startGen && gen%e.cfg.CheckpointEvery == 0 {
				if err := e.cfg.Checkpoint(boundary); err != nil {
					return Result{}, fmt.Errorf("ga: checkpoint at generation %d: %w", gen, err)
				}
			}
		}
		var genStart time.Time
		if recording {
			genStart = time.Now()
		}
		var gspan, dspan trace.Active
		if e.tracing {
			gspan = e.tracer.Start("ga.generation")
			dspan = gspan.Child("ga.dispatch")
		}
		if err := e.evaluate(ctx, gen, pop); err != nil {
			// Canceled mid-generation: the pool has drained; discard the
			// partially evaluated generation and checkpoint its boundary.
			dspan.End()
			gspan.End()
			interrupted = true
			if checkpointing {
				if cerr := e.cfg.Checkpoint(boundary); cerr != nil {
					return Result{}, fmt.Errorf("ga: final checkpoint at generation %d: %w", gen, cerr)
				}
			}
			break
		}
		dspan.End()
		// In multi-objective runs, replace the provisional per-individual
		// scores with NSGA-II selection fitness (non-domination rank plus
		// bounded crowding) now that the whole generation is evaluated.
		if mv != nil {
			e.assignParetoFitness(pop)
		}
		// One pass over the evaluated generation gathers everything the
		// loop tail needs: the best individual, the diversity count (genome
		// hashes into the reused scratch set), and the feasible-fitness
		// aggregate telemetry reports.
		if e.seen == nil {
			e.seen = make(map[uint64]struct{}, len(pop))
		} else {
			clear(e.seen)
		}
		bestIdx, bestFit := -1, best.fitness
		var sum float64
		feasible := 0
		for i := range pop {
			ind := &pop[i]
			// Best-so-far comparisons speak the primary objective in both
			// modes: NSGA-II rank fitness only orders within one generation.
			f := ind.fitness
			if mv != nil {
				f = e.primaryFitness(ind)
			}
			if f > bestFit {
				bestIdx, bestFit = i, f
			}
			e.seen[ind.hash] = struct{}{}
			if ind.ok {
				sum += ind.fitness
				feasible++
				if mv != nil {
					mv.observe(ind.genome, ind.vals)
				}
			}
		}
		if bestIdx >= 0 {
			best = pop[bestIdx]
			best.genome = pop[bestIdx].genome.Clone()
			best.vals = nil // slot scratch; never read through best
			if mv != nil {
				best.fitness = bestFit
			}
		}
		unique := len(e.seen)
		gp := GenPoint{
			Generation:    gen,
			DistinctEvals: e.cache.DistinctEvaluations(),
			BestValue:     best.value,
			UniqueGenomes: unique,
		}
		if mv != nil {
			gp.FrontSize, gp.Hypervolume = mv.stats()
		}
		trajectory = append(trajectory, gp)
		if recording {
			mean := math.NaN()
			if feasible > 0 {
				mean = sum / float64(feasible)
			}
			e.rec.RecordGeneration(telemetry.GenerationRecord{
				Generation:    gen,
				BestValue:     best.value,
				BestFitness:   best.fitness,
				MeanFitness:   mean,
				Feasible:      feasible,
				UniqueGenomes: unique,
				DistinctEvals: e.cache.DistinctEvaluations(),
				FrontSize:     gp.FrontSize,
				Hypervolume:   gp.Hypervolume,
				Elapsed:       time.Since(genStart),
			})
		}
		if e.cfg.ConvergenceWindow > 0 {
			if best.fitness == prevBest && unique == 1 {
				stale++
			} else {
				stale = 0
			}
			prevBest = best.fitness
			if stale >= e.cfg.ConvergenceWindow {
				converged = true
				gspan.End()
				break
			}
		}
		if gen == e.cfg.Generations {
			gspan.End()
			break
		}
		cur = 1 - cur
		var breedStart time.Time
		if e.tracing {
			e.phaseSel, e.phaseCx, e.phaseMut = 0, 0, 0
			breedStart = time.Now()
		}
		e.nextGeneration(r, gen, pop, popBufs[cur])
		if e.tracing {
			// Breeding phases interleave per child, so they are emitted as
			// aggregated pre-measured spans sharing the breeding interval's
			// start rather than three disjoint sub-intervals.
			gspan.Emit("ga.selection", breedStart, e.phaseSel)
			gspan.Emit("ga.crossover", breedStart, e.phaseCx)
			gspan.Emit("ga.mutation", breedStart, e.phaseMut)
		}
		gspan.End()
		// Migration happens after breeding so the RNG draw sequence is
		// identical whether or not immigrants arrive; generation gen+1 is
		// the one receiving them.
		if mig := e.cfg.Migration; mig != nil && mig.due(gen+1) {
			e.migrate(ctx, gen+1, pop, popBufs[cur])
		}
		pop = popBufs[cur]
	}

	res := Result{
		BestValue:     best.value,
		Trajectory:    trajectory,
		DistinctEvals: e.cache.DistinctEvaluations(),
		Converged:     converged,
		Interrupted:   interrupted,
		Cache:         e.cache.Stats(),
	}
	if best.ok {
		res.BestPoint = best.genome
	} else {
		res.BestValue = e.obj.Worst()
	}
	if mv != nil {
		res.Front = mv.front()
		_, res.Hypervolume = mv.stats()
		res.Nadir = mv.nadirValues()
	}
	return res, nil
}

// snapshot captures the resumable state at the start of generation gen,
// before its population is evaluated.
func (e *Engine) snapshot(gen int, draws int64, pop []individual, best individual,
	stale int, prevBest float64, trajectory []GenPoint) *Snapshot {
	snap := &Snapshot{
		Seed:       e.cfg.Seed,
		Generation: gen,
		Draws:      draws,
		Population: clonePoints(pop),
		Stale:      stale,
		PrevBest:   prevBest,
		Trajectory: append([]GenPoint(nil), trajectory...),
		Cache:      e.cache.Export(),
	}
	if best.ok {
		snap.Best = best.genome.Clone()
		snap.BestFitness = best.fitness
		snap.BestValue = best.value
	}
	return snap
}

// evaluate fills in fitness for the population. Under DispatchBatch (the
// default) the generation is submitted to the cache as deduplicated
// batches; under DispatchSingle each individual is a separate cache lookup
// on a fixed set of Parallelism workers. Both paths produce identical
// populations and cache stats at any parallelism level. A non-nil error
// means ctx was canceled: the generation is incomplete and must be
// discarded.
func (e *Engine) evaluate(ctx context.Context, gen int, pop []individual) error {
	if e.cfg.Dispatch == DispatchSingle {
		return e.evaluateSingle(ctx, gen, pop)
	}
	// Adaptive dispatch: the batch pipeline amortizes worker fan-out and
	// lock traffic, so with one worker and no bulk backend to feed there is
	// nothing to amortize and the inline path is strictly cheaper. Results
	// are identical either way (see TestDispatchEquivalence).
	if e.cfg.Parallelism <= 1 && e.cfg.BatchBackend == nil {
		return e.evaluateSingle(ctx, gen, pop)
	}
	return e.evaluateBatch(ctx, gen, pop)
}

// score interprets one evaluation outcome into the individual's fitness
// fields: errors and infeasible metrics both demote to -Inf / Worst. In
// multi-objective runs the fitness written here is provisional (the
// primary objective's) - selection fitness is reassigned population-wide
// by assignParetoFitness once the whole generation is evaluated.
func (e *Engine) score(ind *individual, m metrics.Metrics, err error) {
	if e.objs != nil {
		e.scoreMulti(ind, m, err)
		return
	}
	if err != nil {
		ind.fitness = math.Inf(-1)
		ind.value = e.obj.Worst()
		ind.ok = false
		return
	}
	ind.fitness = e.obj.Fitness(m)
	ind.value, ind.ok = e.obj.Value(m)
	if !ind.ok {
		ind.fitness = math.Inf(-1)
		ind.value = e.obj.Worst()
	}
}

// evaluateSingle is the point-at-a-time dispatch path. In hash mode each
// lookup goes straight to the cache's hashed entry point on the
// individual's precomputed genome hash; string mode builds (and caches)
// canonical keys as before.
func (e *Engine) evaluateSingle(ctx context.Context, gen int, pop []individual) error {
	hashed := e.cfg.KeyMode != KeyModeString
	eval := func(i int) {
		ind := &pop[i]
		var m metrics.Metrics
		var err error
		if hashed {
			m, err = e.cache.EvaluateHashedCtx(ctx, ind.hash, ind.genome)
		} else {
			if ind.key == "" {
				ind.key = e.space.Key(ind.genome)
			}
			m, err = e.cache.EvaluateKeyedCtx(ctx, ind.key, ind.genome)
		}
		e.score(ind, m, err)
		e.rec.RecordEvaluation(telemetry.EvaluationRecord{
			Generation: gen,
			Feasible:   ind.ok,
			Fitness:    ind.fitness,
		})
	}
	return pool.EachRecCtx(ctx, e.cfg.Parallelism, len(pop), eval, e.rec)
}

// evaluateBatch submits the generation to the cache in chunks of BatchSize
// (whole generation when 0). Identities (hashes or keys, per the key mode),
// points, and outcomes stay index-aligned, so the scored population is
// identical to evaluateSingle's.
func (e *Engine) evaluateBatch(ctx context.Context, gen int, pop []individual) error {
	hashed := e.cfg.KeyMode != KeyModeString
	chunk := e.cfg.BatchSize
	if chunk <= 0 || chunk > len(pop) {
		chunk = len(pop)
	}
	if cap(e.batchPts) < chunk {
		e.batchPts = make([]param.Point, 0, chunk)
		if hashed {
			e.batchHashes = make([]uint64, 0, chunk)
		} else {
			e.batchKeys = make([]string, 0, chunk)
		}
	}
	for lo := 0; lo < len(pop); lo += chunk {
		hi := min(lo+chunk, len(pop))
		batch := pop[lo:hi]
		pts := e.batchPts[:0]
		var ms []metrics.Metrics
		var errs []error
		var err error
		if hashed {
			hashes := e.batchHashes[:0]
			for i := range batch {
				hashes = append(hashes, batch[i].hash)
				pts = append(pts, batch[i].genome)
			}
			ms, errs, err = e.cache.EvaluateBatchHashedCtx(ctx, hashes, pts, e.cfg.Parallelism)
		} else {
			keys := e.batchKeys[:0]
			for i := range batch {
				ind := &batch[i]
				if ind.key == "" {
					ind.key = e.space.Key(ind.genome)
				}
				keys = append(keys, ind.key)
				pts = append(pts, ind.genome)
			}
			ms, errs, err = e.cache.EvaluateBatchKeyedCtx(ctx, keys, pts, e.cfg.Parallelism)
		}
		if err != nil {
			return err
		}
		for i := range batch {
			ind := &batch[i]
			e.score(ind, ms[i], errs[i])
			e.rec.RecordEvaluation(telemetry.EvaluationRecord{
				Generation: gen,
				Feasible:   ind.ok,
				Fitness:    ind.fitness,
			})
		}
	}
	return ctx.Err()
}

// nextGeneration breeds the following population into next's arena-backed
// genome slots: elites first, then children from selected parents via
// crossover and mutation. Parents live in pop's arena and children are
// written into next's, so nothing here allocates.
func (e *Engine) nextGeneration(r *rand.Rand, gen int, pop, next []individual) {
	// Elites: the top-Elitism genomes by fitness.
	if e.order == nil || len(e.order) != len(pop) {
		e.order = make([]int, len(pop))
	}
	order := e.order
	for i := range order {
		order[i] = i
	}
	// Partial selection sort is plenty for tiny populations.
	for k := 0; k < e.cfg.Elitism; k++ {
		maxI := k
		for j := k + 1; j < len(order); j++ {
			if pop[order[j]].fitness > pop[order[maxI]].fitness {
				maxI = j
			}
		}
		order[k], order[maxI] = order[maxI], order[k]
		// The elite genome is unchanged, so its identity (hash, and cached
		// key in string mode) carries over.
		elite := &pop[order[k]]
		copy(next[k].genome, elite.genome)
		next[k].hash = elite.hash
		next[k].key = elite.key
	}

	sel := e.newSelector(pop)
	for i := e.cfg.Elitism; i < len(next); i++ {
		child := &next[i]
		e.breedInto(r, gen, child.genome, sel)
		child.hash = e.space.Hash64(child.genome)
		child.key = "" // stale slot state from two generations ago
	}
}

// selector draws parents from the evaluated population.
type selector func(r *rand.Rand) individual

// newSelector builds the configured selection scheme over the population.
func (e *Engine) newSelector(pop []individual) selector {
	switch e.cfg.Selection {
	case SelectTournament:
		return func(r *rand.Rand) individual {
			best := pop[r.Intn(len(pop))]
			for i := 1; i < e.cfg.TournamentSize; i++ {
				c := pop[r.Intn(len(pop))]
				if c.fitness > best.fitness {
					best = c
				}
			}
			return best
		}
	default: // SelectRankRoulette
		// Rank individuals by fitness ascending; selection probability is
		// proportional to 1-based rank (linear ranking, scale-free - the
		// PyEvolve-style scheme, robust to fitness magnitude).
		order := make([]int, len(pop))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			return pop[order[a]].fitness < pop[order[b]].fitness
		})
		total := len(pop) * (len(pop) + 1) / 2
		return func(r *rand.Rand) individual {
			x := r.Intn(total)
			for rank := len(pop); rank >= 1; rank-- {
				x -= rank
				if x < 0 {
					return pop[order[rank-1]]
				}
			}
			return pop[order[len(pop)-1]]
		}
	}
}

// breedInto produces one child genome in the caller-provided (arena-backed)
// slot. The RNG draw sequence is identical to the historical allocate-and-
// return implementation, so runs stay byte-identical.
func (e *Engine) breedInto(r *rand.Rand, gen int, child param.Point, sel selector) {
	// Phase timing (tracing only) brackets the same calls the untraced path
	// makes, in the same order, so the RNG draw sequence is untouched.
	// Parent draws (and the crossover coin) count as selection; the
	// recombination itself as crossover; the strategy pass as mutation.
	var t0 time.Time
	if e.tracing {
		t0 = time.Now()
	}
	p1 := sel(r)
	if r.Float64() < e.cfg.CrossoverRate {
		p2 := sel(r)
		if e.tracing {
			now := time.Now()
			e.phaseSel += now.Sub(t0)
			t0 = now
		}
		e.crossoverInto(r, child, p1.genome, p2.genome)
		if e.tracing {
			now := time.Now()
			e.phaseCx += now.Sub(t0)
			t0 = now
		}
	} else {
		copy(child, p1.genome)
		if e.tracing {
			now := time.Now()
			e.phaseSel += now.Sub(t0)
			t0 = now
		}
	}
	for _, g := range e.strategy.MutationGenes(r, gen, child, e.cfg.MutationRate) {
		if g < 0 || g >= len(child) {
			continue // defensive: ignore out-of-range picks from strategies
		}
		nv := e.strategy.MutateValue(r, gen, g, child[g])
		if nv >= 0 && nv < e.space.Param(g).Card() {
			child[g] = nv
		}
	}
	if e.tracing {
		e.phaseMut += time.Since(t0)
	}
}

// crossoverInto applies the configured crossover operator, writing parent
// a's genome modified by b's into child. a and b live in the previous
// generation's arena, child in the next's, so the copies never alias.
func (e *Engine) crossoverInto(r *rand.Rand, child, a, b param.Point) {
	copy(child, a)
	switch e.cfg.Crossover {
	case CrossoverUniform:
		for g := range child {
			if r.Intn(2) == 1 {
				child[g] = b[g]
			}
		}
	case CrossoverTwoPoint:
		if len(child) >= 2 {
			i, j := r.Intn(len(child)), r.Intn(len(child))
			if i > j {
				i, j = j, i
			}
			copy(child[i:j+1], b[i:j+1])
		}
	default: // CrossoverSinglePoint
		cut := r.Intn(len(child))
		copy(child[cut:], b[cut:])
	}
}
