package ga

import (
	"reflect"
	"testing"

	"nautilus/internal/metrics"
)

// TestRunParallelismDeterministic checks the engine's core guarantee: a run
// with parallel fitness evaluation is indistinguishable from a sequential
// one - same best point, same trajectory, same distinct-evaluation counts.
func TestRunParallelismDeterministic(t *testing.T) {
	s, eval := quadSpace()
	obj := metrics.MinimizeMetric("cost")
	run := func(par int) Result {
		e, err := New(s, obj, eval, Config{Seed: 42, Generations: 30, Parallelism: par}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return e.Run()
	}
	seq := run(1)
	for _, par := range []int{2, 4, 16} {
		got := run(par)
		if !reflect.DeepEqual(got, seq) {
			t.Errorf("Parallelism=%d result diverges from sequential:\n got %+v\nwant %+v", par, got, seq)
		}
	}
}
