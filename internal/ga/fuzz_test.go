package ga

import (
	"testing"

	"nautilus/internal/metrics"
	"nautilus/internal/param"
)

// FuzzResumeSnapshot throws arbitrary resume state at the engine: whatever
// a decoded checkpoint claims, RunContext must either reject it with an
// error or resume into a clean, deterministic run - never panic, never
// hang replaying a fabricated RNG draw count, never produce impossible
// accounting.
func FuzzResumeSnapshot(f *testing.F) {
	f.Add(int64(3), 2, int64(50), []byte{0, 1, 2, 0, 3, 1, 1, 2}, true)
	f.Add(int64(9), 0, int64(0), []byte{0, 0, 0, 0, 0, 0, 0, 0}, false)    // wrong seed
	f.Add(int64(3), 99, int64(50), []byte{0, 1, 2, 0, 3, 1, 1, 2}, true)   // generation out of range
	f.Add(int64(3), 2, int64(-5), []byte{0, 1, 2, 0, 3, 1, 1, 2}, true)    // negative draws
	f.Add(int64(3), 2, int64(1<<60), []byte{0, 1, 2, 0, 3, 1, 1, 2}, true) // fabricated draw count
	f.Add(int64(3), 2, int64(50), []byte{0, 99, 2, 0, 3, 1, 1, 2}, true)   // out-of-range gene
	f.Add(int64(3), 2, int64(50), []byte{0, 1}, true)                      // short population

	f.Fuzz(func(t *testing.T, seed int64, gen int, draws int64, popBytes []byte, withBest bool) {
		space, err := param.NewSpace(
			param.Int("a", 0, 3, 1),
			param.Choice("b", "x", "y", "z"),
		)
		if err != nil {
			t.Fatal(err)
		}
		eval := func(pt param.Point) (metrics.Metrics, error) {
			return metrics.Metrics{metrics.LUTs: float64(pt[0]*3 + pt[1] + 1)}, nil
		}
		cfg := Config{PopulationSize: 4, Generations: 6, Seed: 3}

		// Rebuild a population from the raw bytes without sanitizing - the
		// engine's validation is exactly what is under test.
		pop := make([]param.Point, len(popBytes)/2)
		for i := range pop {
			pop[i] = param.Point{int(popBytes[2*i]), int(popBytes[2*i+1])}
		}
		snap := &Snapshot{
			Seed:       seed,
			Generation: gen,
			Draws:      draws,
			Population: pop,
			Stale:      0,
			PrevBest:   -1,
		}
		if withBest && len(pop) > 0 {
			snap.Best = pop[0]
			snap.BestFitness = -5
			snap.BestValue = 5
		}

		run := func() (Result, error) {
			c := cfg
			c.Resume = snap
			eng, err := New(space, metrics.MinimizeMetric(metrics.LUTs), eval, c, nil)
			if err != nil {
				t.Fatalf("engine construction failed: %v", err)
			}
			return eng.RunContext(t.Context())
		}
		res, err := run()
		if err != nil {
			return // rejected resume state: the safe outcome
		}
		// Accepted: the run must have completed with coherent accounting.
		if res.Interrupted {
			t.Fatal("uncanceled resumed run reported interruption")
		}
		if res.DistinctEvals < 0 || res.Cache.Distinct < 0 || res.Cache.Total < res.Cache.Distinct {
			t.Fatalf("impossible accounting after resume: %+v", res.Cache)
		}
		if len(res.Trajectory) == 0 {
			t.Fatal("resumed run produced no trajectory")
		}
		if res.BestPoint != nil {
			if verr := space.Validate(res.BestPoint); verr != nil {
				t.Fatalf("resumed run returned invalid best point: %v", verr)
			}
		}
		// And deterministically: resuming the same snapshot twice is
		// byte-identical (a resume that silently depends on hidden state
		// would diverge here).
		res2, err := run()
		if err != nil {
			t.Fatalf("second resume of accepted snapshot failed: %v", err)
		}
		if res2.BestValue != res.BestValue || res2.DistinctEvals != res.DistinctEvals ||
			len(res2.Trajectory) != len(res.Trajectory) {
			t.Fatalf("resume not deterministic: %v/%d vs %v/%d",
				res.BestValue, res.DistinctEvals, res2.BestValue, res2.DistinctEvals)
		}
	})
}
