// Multi-objective (pareto) mode: NSGA-II selection inside the existing
// engine. The whole mechanism reduces to a fitness transform - after each
// generation is evaluated, every individual's scalar fitness is replaced
// by a synthesized value that encodes (non-domination rank, crowding
// distance) such that rank strictly dominates crowding and ranks never
// overlap. Everything downstream - tournament and rank-roulette selection,
// elitism, convergence accounting, checkpoint state, and the migration
// contract's stable fitness sort (so emigrating islands ship front
// members) - works unchanged, draws the same RNG sequence, and therefore
// stays byte-identical across parallelism, dispatch, and key modes.
package ga

import (
	"fmt"
	"math"

	"nautilus/internal/dataset"
	"nautilus/internal/metrics"
	"nautilus/internal/param"
	"nautilus/internal/pareto"
)

// NewMulti builds a multi-objective Engine over a plain evaluator. See
// NewMultiContext.
func NewMulti(space *param.Space, objs []metrics.Objective, eval dataset.Evaluator, cfg Config, strategy Strategy) (*Engine, error) {
	if eval == nil {
		return nil, fmt.Errorf("ga: nil space or evaluator")
	}
	return NewMultiContext(space, objs, dataset.AdaptContext(eval), cfg, strategy)
}

// NewMultiContext builds an Engine that optimizes two or more objectives
// simultaneously with NSGA-II-style non-dominated sorting and
// crowding-distance selection. objs[0] is the primary objective: scalar
// reporting surfaces (Result.BestValue/BestPoint, trajectory BestValue,
// convergence detection) describe the primary-best front member, while
// Result.Front carries the full non-dominated archive over every feasible
// design the run evaluated.
func NewMultiContext(space *param.Space, objs []metrics.Objective, eval dataset.ContextEvaluator, cfg Config, strategy Strategy) (*Engine, error) {
	if len(objs) < 2 {
		return nil, fmt.Errorf("ga: multi-objective run needs at least two objectives, got %d", len(objs))
	}
	e, err := NewContext(space, objs[0], eval, cfg, strategy)
	if err != nil {
		return nil, err
	}
	e.objs = objs
	return e, nil
}

// Objectives returns the engine's objective vector: len >= 2 in
// multi-objective mode, nil in scalar mode.
func (e *Engine) Objectives() []metrics.Objective { return e.objs }

// scoreMulti is score's multi-objective arm: it extracts the full
// objective-value vector into the individual's slot scratch, marks
// feasibility (all objectives present), and leaves the primary objective's
// signed fitness as a provisional score for per-evaluation telemetry.
func (e *Engine) scoreMulti(ind *individual, m metrics.Metrics, err error) {
	if cap(ind.vals) < len(e.objs) {
		ind.vals = make([]float64, len(e.objs))
	}
	ind.vals = ind.vals[:len(e.objs)]
	ind.ok = err == nil
	if ind.ok {
		for i, o := range e.objs {
			v, present := o.Value(m)
			if !present {
				ind.ok = false
				break
			}
			ind.vals[i] = v
		}
	}
	if ind.ok {
		ind.value = ind.vals[0]
		ind.fitness = e.primaryFitness(ind)
	} else {
		ind.fitness = math.Inf(-1)
		ind.value = e.obj.Worst()
	}
}

// primaryFitness is the individual's signed primary-objective value:
// higher is better, -Inf when infeasible. It is the cross-generation
// comparison key in multi-objective runs, where NSGA-II rank fitness only
// orders individuals within a single generation.
func (e *Engine) primaryFitness(ind *individual) float64 {
	if !ind.ok {
		return math.Inf(-1)
	}
	if e.obj.Direction() == metrics.Minimize {
		return -ind.value
	}
	return ind.value
}

// assignParetoFitness replaces the population's provisional scores with
// NSGA-II selection fitness: -rank + b(crowd), where b maps crowding into
// [0, 0.5] for finite distances and 0.75 for boundary (infinite) ones.
// Rank r fitness therefore lives in [-r, -r+0.75], so no two ranks
// overlap: any rank-r individual beats every rank-(r+1) one, and within a
// rank less-crowded individuals win - the crowded-comparison operator,
// expressed as a plain float the existing selectors already order by.
// Infeasible individuals keep -Inf.
func (e *Engine) assignParetoFitness(pop []individual) {
	n := len(pop)
	if cap(e.mvVals) < n {
		e.mvVals = make([][]float64, n)
		e.mvOK = make([]bool, n)
		e.mvRanks = make([]int, n)
		e.mvCrowd = make([]float64, n)
	}
	vals, ok := e.mvVals[:n], e.mvOK[:n]
	ranks, crowd := e.mvRanks[:n], e.mvCrowd[:n]
	for i := range pop {
		vals[i] = pop[i].vals
		ok[i] = pop[i].ok
	}
	pareto.RankCrowd(e.objs, vals, ok, ranks, crowd)
	for i := range pop {
		if !pop[i].ok {
			continue
		}
		bonus := 0.75
		if !math.IsInf(crowd[i], 1) {
			bonus = 0.5 * crowd[i] / (1 + crowd[i])
		}
		pop[i].fitness = -float64(ranks[i]) + bonus
	}
}

// multiState is the per-run multi-objective bookkeeping: the incremental
// non-dominated archive and the running nadir (per-objective worst
// feasible value), which anchors the hypervolume reference point.
type multiState struct {
	objs     []metrics.Objective
	archive  *pareto.Archive
	nadir    []float64
	nadirSet bool
}

// newMultiState returns the run state for a multi-objective engine, nil
// for a scalar one.
func (e *Engine) newMultiState() *multiState {
	if e.objs == nil {
		return nil
	}
	return &multiState{
		objs:    e.objs,
		archive: pareto.NewArchive(e.objs),
		nadir:   make([]float64, len(e.objs)),
	}
}

// observe folds one feasible evaluated individual into the archive and
// nadir.
func (mv *multiState) observe(genome param.Point, vals []float64) {
	mv.archive.Add(genome, vals)
	if !mv.nadirSet {
		copy(mv.nadir, vals)
		mv.nadirSet = true
		return
	}
	for i, o := range mv.objs {
		if o.Better(mv.nadir[i], vals[i]) {
			mv.nadir[i] = vals[i]
		}
	}
}

// stats returns the archive size and, for exactly two objectives, the
// hypervolume relative to the nadir-derived reference.
func (mv *multiState) stats() (int, float64) {
	size := mv.archive.Size()
	if size == 0 || len(mv.objs) != 2 {
		return size, 0
	}
	objs2 := [2]metrics.Objective{mv.objs[0], mv.objs[1]}
	ref := pareto.RefFromNadir(objs2, [2]float64{mv.nadir[0], mv.nadir[1]})
	hv, err := pareto.Hypervolume2D(objs2, mv.archive.Members(), ref)
	if err != nil {
		// Unreachable: the reference sits strictly beyond the nadir, which
		// bounds every archive member by construction.
		return size, 0
	}
	return size, hv
}

// front returns the archive in canonical order.
func (mv *multiState) front() []pareto.FrontPoint { return mv.archive.Members() }

// nadirValues returns a copy of the running nadir, nil until any feasible
// point has been observed.
func (mv *multiState) nadirValues() []float64 {
	if !mv.nadirSet {
		return nil
	}
	return append([]float64(nil), mv.nadir...)
}

// rebuild reconstructs the archive and nadir from a restored cache
// snapshot. Entries are iterated in the snapshot's canonical (key-sorted)
// order; the archive's contents are insertion-order independent, so the
// rebuilt state matches the uninterrupted run's at the same boundary.
func (mv *multiState) rebuild(space *param.Space, snap dataset.CacheSnapshot) error {
	vals := make([]float64, len(mv.objs))
	for _, es := range snap.Entries {
		if es.Err != "" {
			continue
		}
		feasible := true
		for i, o := range mv.objs {
			v, present := o.Value(es.Metrics)
			if !present {
				feasible = false
				break
			}
			vals[i] = v
		}
		if !feasible {
			continue
		}
		pt, err := space.ParseKey(es.Key)
		if err != nil {
			return fmt.Errorf("ga: rebuild archive: %w", err)
		}
		mv.observe(pt, vals)
	}
	return nil
}
