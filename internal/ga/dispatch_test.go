package ga

import (
	"fmt"
	"reflect"
	"testing"

	"nautilus/internal/metrics"
)

// TestDispatchEquivalence is the batched pipeline's core contract: batch
// dispatch produces results identical to the legacy point-at-a-time path -
// best point, trajectory, and cache accounting included - at every batch
// size and parallelism.
func TestDispatchEquivalence(t *testing.T) {
	s, eval := quadSpace()
	obj := metrics.MinimizeMetric("cost")
	const pop = 14
	run := func(dispatch string, batchSize, par int) Result {
		t.Helper()
		e, err := New(s, obj, eval, Config{
			Seed:           7,
			PopulationSize: pop,
			Generations:    30,
			Parallelism:    par,
			Dispatch:       dispatch,
			BatchSize:      batchSize,
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return e.Run()
	}

	want := run(DispatchSingle, 0, 1)
	for _, par := range []int{1, 4} {
		if got := run(DispatchSingle, 0, par); !reflect.DeepEqual(want, got) {
			t.Errorf("single dispatch par=%d differs from par=1", par)
		}
		for _, bs := range []int{1, 7, pop} {
			name := fmt.Sprintf("batch size=%d par=%d", bs, par)
			if got := run(DispatchBatch, bs, par); !reflect.DeepEqual(want, got) {
				t.Errorf("%s: result differs from single dispatch\n got: %+v\nwant: %+v", name, got, want)
			}
		}
	}
}

// TestKeyModeEquivalence is the hash-keyed pipeline's core contract: runs
// dispatched on genome hashes are byte-identical to string-keyed runs -
// best point, trajectory, diversity counts, and cache accounting included -
// across dispatch modes, batch sizes, and parallelism.
func TestKeyModeEquivalence(t *testing.T) {
	s, eval := quadSpace()
	obj := metrics.MinimizeMetric("cost")
	const pop = 14
	run := func(keyMode, dispatch string, batchSize, par int) Result {
		t.Helper()
		e, err := New(s, obj, eval, Config{
			Seed:           7,
			PopulationSize: pop,
			Generations:    30,
			Parallelism:    par,
			Dispatch:       dispatch,
			BatchSize:      batchSize,
			KeyMode:        keyMode,
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return e.Run()
	}

	want := run(KeyModeString, DispatchSingle, 0, 1)
	for _, keyMode := range []string{KeyModeHash, KeyModeString} {
		for _, par := range []int{1, 4} {
			if got := run(keyMode, DispatchSingle, 0, par); !reflect.DeepEqual(want, got) {
				t.Errorf("key mode %s single dispatch par=%d differs from string-keyed baseline", keyMode, par)
			}
			for _, bs := range []int{1, 7, pop} {
				if got := run(keyMode, DispatchBatch, bs, par); !reflect.DeepEqual(want, got) {
					t.Errorf("key mode %s batch size=%d par=%d differs from string-keyed baseline\n got: %+v\nwant: %+v",
						keyMode, bs, par, got, want)
				}
			}
		}
	}
}

// TestDispatchValidation rejects unknown modes and negative batch sizes.
func TestDispatchValidation(t *testing.T) {
	s, eval := quadSpace()
	obj := metrics.MinimizeMetric("cost")
	if _, err := New(s, obj, eval, Config{Dispatch: "bulk"}, nil); err == nil {
		t.Error("unknown dispatch mode accepted")
	}
	if _, err := New(s, obj, eval, Config{BatchSize: -1}, nil); err == nil {
		t.Error("negative batch size accepted")
	}
	if _, err := New(s, obj, eval, Config{KeyMode: "sha256"}, nil); err == nil {
		t.Error("unknown key mode accepted")
	}
}
