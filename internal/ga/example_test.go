package ga_test

import (
	"fmt"

	"nautilus/internal/ga"
	"nautilus/internal/metrics"
	"nautilus/internal/param"
)

// A plain GA search over an IP parameter space: the paper's baseline.
func Example() {
	space := param.MustSpace(
		param.Int("x", 0, 31, 1),
		param.Int("y", 0, 31, 1),
	)
	evaluate := func(pt param.Point) (metrics.Metrics, error) {
		dx, dy := float64(pt[0]-25), float64(pt[1]-6)
		return metrics.Metrics{"cost": 10 + dx*dx + dy*dy}, nil
	}
	engine, err := ga.New(space, metrics.MinimizeMetric("cost"), evaluate,
		ga.Config{Seed: 4, Generations: 60}, nil) // nil strategy = unguided baseline
	if err != nil {
		fmt.Println(err)
		return
	}
	res := engine.Run()
	fmt.Println("best:", res.BestValue, "at", space.Describe(res.BestPoint))
	fmt.Println("cheap:", res.DistinctEvals < 500)
	// Output:
	// best: 10 at x=25 y=6
	// cheap: true
}
