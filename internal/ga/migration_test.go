package ga

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"nautilus/internal/metrics"
	"nautilus/internal/param"
)

// TestMigrationNeverPerturbsRNG pins the core determinism contract: a run
// whose exchange returns nothing (or fails) is byte-identical to a run
// with no migration at all, because migration never draws from the run
// RNG and injects only after breeding.
func TestMigrationNeverPerturbsRNG(t *testing.T) {
	s, eval := quadSpace()
	obj := metrics.MinimizeMetric("cost")
	run := func(mig *Migration) Result {
		e, err := New(s, obj, eval, Config{Seed: 7, Generations: 30, Migration: mig}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return e.Run()
	}
	plain := run(nil)
	empty := run(&Migration{Interval: 3, Count: 2, Exchange: func(ctx context.Context, gen int, out []Migrant) ([]Migrant, error) {
		return nil, nil
	}})
	failing := run(&Migration{Interval: 3, Count: 2, Exchange: func(ctx context.Context, gen int, out []Migrant) ([]Migrant, error) {
		return nil, errors.New("peer unreachable")
	}})
	if !reflect.DeepEqual(plain, empty) {
		t.Errorf("empty exchange changed the run:\nplain %+v\nempty %+v", plain, empty)
	}
	if !reflect.DeepEqual(plain, failing) {
		t.Errorf("failing exchange changed the run:\nplain %+v\nfail  %+v", plain, failing)
	}
}

// TestMigrationSchedule pins the exchange cadence (generation g receives
// migrants iff g > 0 and g % Interval == 0) and the emigrant contract:
// Count genomes, best first, cloned out of the arena.
func TestMigrationSchedule(t *testing.T) {
	s, eval := quadSpace()
	obj := metrics.MinimizeMetric("cost")
	var mu sync.Mutex
	var gens []int
	var emigrants [][]Migrant
	mig := &Migration{Interval: 4, Count: 3, Exchange: func(ctx context.Context, gen int, out []Migrant) ([]Migrant, error) {
		mu.Lock()
		defer mu.Unlock()
		gens = append(gens, gen)
		emigrants = append(emigrants, out)
		return nil, nil
	}}
	e, err := New(s, obj, eval, Config{Seed: 11, Generations: 12, Migration: mig}, nil)
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	if want := []int{4, 8, 12}; !reflect.DeepEqual(gens, want) {
		t.Fatalf("exchange generations %v, want %v", gens, want)
	}
	for i, out := range emigrants {
		if len(out) != 3 {
			t.Fatalf("exchange %d shipped %d migrants, want 3", i, len(out))
		}
		for _, m := range out {
			if len(m.Genome) != s.Len() {
				t.Fatalf("emigrant genome length %d, want %d", len(m.Genome), s.Len())
			}
		}
	}
}

// TestMigrationInjectsImmigrants proves returned genomes actually enter
// the population (the target genome is planted via migration and the
// search must lock onto it immediately) while invalid wire data is
// rejected.
func TestMigrationInjectsImmigrants(t *testing.T) {
	s, eval := quadSpace()
	obj := metrics.MinimizeMetric("cost")
	target := param.Point{3, 12, 7, 9} // quadSpace's unique optimum, cost 1
	mig := &Migration{Interval: 1, Count: 1, Exchange: func(ctx context.Context, gen int, out []Migrant) ([]Migrant, error) {
		return []Migrant{
			{Genome: param.Point{1, 2}},        // wrong arity: dropped
			{Genome: param.Point{0, 0, 0, 99}}, // out of range: dropped
			{Genome: target.Clone()},           // adopted
		}, nil
	}}
	// MutationRate tiny and crossover off so the planted optimum can only
	// come from injection, not from breeding luck within 3 generations.
	cfg := Config{Seed: 5, Generations: 3, PopulationSize: 6, MutationRate: 1e-9, CrossoverRate: 1e-9, Migration: mig}
	e, err := New(s, obj, eval, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run()
	if res.BestValue != 1 {
		t.Fatalf("planted optimum not adopted: best %v, want 1", res.BestValue)
	}
}

// TestMigrationValidation pins the config errors.
func TestMigrationValidation(t *testing.T) {
	noop := func(ctx context.Context, gen int, out []Migrant) ([]Migrant, error) { return nil, nil }
	bad := []*Migration{
		{Interval: 1, Count: 1},                  // nil exchange
		{Interval: -2, Count: 1, Exchange: noop}, // bad interval
		{Interval: 1, Count: 10, Exchange: noop}, // count > population-elitism
	}
	for i, m := range bad {
		c := Config{PopulationSize: 10, Elitism: 1, Migration: m}.withDefaults()
		if err := c.validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	good := Config{PopulationSize: 10, Elitism: 1, Migration: &Migration{Exchange: noop}}.withDefaults()
	if err := good.validate(); err != nil {
		t.Errorf("defaulted migration rejected: %v", err)
	}
	if good.Migration.Interval != 5 || good.Migration.Count != 1 {
		t.Errorf("migration defaults wrong: %+v", good.Migration)
	}
}
