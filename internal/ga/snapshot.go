package ga

import (
	"fmt"
	"math"
	"math/rand"

	"nautilus/internal/dataset"
	"nautilus/internal/param"
)

// countingSource wraps the run's random source and counts every draw. The
// count is the serializable form of the generator's state: math/rand's
// source advances exactly one step per Int63 or Uint64 call, so a resumed
// run rebuilds the source from the seed and fast-forwards the same number
// of steps to land on a bit-identical stream. Not safe for concurrent use -
// the engine only draws from the single breeding goroutine, never from
// evaluation workers.
type countingSource struct {
	src   rand.Source64
	draws int64
}

func newCountingSource(seed int64) *countingSource {
	return &countingSource{src: rand.NewSource(seed).(rand.Source64)}
}

func (s *countingSource) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

func (s *countingSource) Uint64() uint64 {
	s.draws++
	return s.src.Uint64()
}

func (s *countingSource) Seed(seed int64) {
	s.src.Seed(seed)
	s.draws = 0
}

// fastForward advances the source to the given draw count.
func (s *countingSource) fastForward(draws int64) {
	for s.draws < draws {
		s.draws++
		s.src.Uint64()
	}
}

// Snapshot is the complete resumable state of a GA run at a generation
// boundary: everything needed to continue the search and reproduce the
// uninterrupted run's Result byte for byte. Guidance importance decay is
// derived from Generation, and the run RNG is reconstructed from
// (Seed, Draws), so neither needs explicit state.
//
// Snapshots are taken at the *start* of Generation, before its population
// is evaluated: resuming re-evaluates that population against the restored
// cache, so a mid-generation crash costs at most one generation of cache
// misses and never skews the distinct-evaluation accounting.
type Snapshot struct {
	// Seed is the run seed the snapshot belongs to; resuming under a
	// different seed is rejected.
	Seed int64
	// Generation is the next generation to evaluate (0-based).
	Generation int
	// Draws is the number of RNG draws consumed so far.
	Draws int64
	// Population holds the generation's genomes (not yet evaluated).
	Population []param.Point
	// Best is the best feasible genome so far (nil when none).
	Best        param.Point
	BestFitness float64
	BestValue   float64
	// Stale and PrevBest carry the convergence-window state.
	Stale    int
	PrevBest float64
	// Trajectory holds the per-generation records accumulated so far.
	Trajectory []GenPoint
	// Cache is the memoized evaluation state and its counters.
	Cache dataset.CacheSnapshot
}

// clonePoints deep-copies a population's genomes.
func clonePoints(pop []individual) []param.Point {
	out := make([]param.Point, len(pop))
	for i := range pop {
		out[i] = pop[i].genome.Clone()
	}
	return out
}

// validateResume checks a snapshot against the engine's configuration and
// space before any state is restored.
func (e *Engine) validateResume(snap *Snapshot) error {
	if snap.Seed != e.cfg.Seed {
		return fmt.Errorf("ga: resume snapshot was taken with seed %d, run configured with seed %d",
			snap.Seed, e.cfg.Seed)
	}
	if len(snap.Population) != e.cfg.PopulationSize {
		return fmt.Errorf("ga: resume snapshot has population %d, run configured with %d",
			len(snap.Population), e.cfg.PopulationSize)
	}
	if snap.Generation < 0 || snap.Generation > e.cfg.Generations {
		return fmt.Errorf("ga: resume snapshot at generation %d outside run's [0,%d]",
			snap.Generation, e.cfg.Generations)
	}
	if snap.Draws < 0 {
		return fmt.Errorf("ga: resume snapshot has negative RNG draw count %d", snap.Draws)
	}
	// fastForward replays the stream one draw at a time, so a corrupted
	// draw count must be bounded before it is trusted: a generous
	// overestimate of what the configured run could ever have consumed
	// (~1024 draws per genome per generation, orders of magnitude above
	// any real operator mix) separates plausible state from garbage.
	maxDraws := float64(e.cfg.Generations+1) * float64(e.cfg.PopulationSize) *
		1024 * float64(e.space.Len()+e.cfg.TournamentSize+4)
	if float64(snap.Draws) > maxDraws {
		return fmt.Errorf("ga: resume snapshot draw count %d is impossibly large for a %d-generation run",
			snap.Draws, e.cfg.Generations)
	}
	for i, g := range snap.Population {
		if err := e.space.Validate(g); err != nil {
			return fmt.Errorf("ga: resume snapshot genome %d: %w", i, err)
		}
	}
	if snap.Best != nil {
		if err := e.space.Validate(snap.Best); err != nil {
			return fmt.Errorf("ga: resume snapshot best genome: %w", err)
		}
		if math.IsNaN(snap.BestFitness) {
			return fmt.Errorf("ga: resume snapshot best fitness is NaN")
		}
	}
	return nil
}
