package ga

import (
	"context"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"nautilus/internal/dataset"
	"nautilus/internal/metrics"
	"nautilus/internal/param"
)

// ckptSpace builds a small space with a rugged objective for checkpoint
// tests: enough structure that best/stale/trajectory state all matter.
func ckptSpace(t *testing.T) (*param.Space, metrics.Objective, dataset.Evaluator) {
	t.Helper()
	space, err := param.NewSpace(
		param.Int("a", 0, 15, 1),
		param.Int("b", 0, 15, 1),
		param.Int("c", 0, 7, 1),
	)
	if err != nil {
		t.Fatal(err)
	}
	eval := func(pt param.Point) (metrics.Metrics, error) {
		a, b, c := pt[0], pt[1], pt[2]
		if (a+b+c)%11 == 3 { // scattered infeasible region
			return nil, fmt.Errorf("infeasible")
		}
		v := float64(a*a+b) - 3*float64(c) + float64((a*b)%7)
		return metrics.Metrics{"score": v}, nil
	}
	return space, metrics.MaximizeMetric("score"), eval
}

func ckptConfig(seed int64) Config {
	return Config{
		PopulationSize:    8,
		Generations:       30,
		Seed:              seed,
		Parallelism:       4,
		ConvergenceWindow: 0,
	}
}

// TestResumeByteIdentical kills a run at every possible generation boundary
// (via context cancellation detected mid-generation) and proves the resumed
// run's Result is deeply identical to the uninterrupted run's - trajectory,
// cache counters, best point, everything.
func TestResumeByteIdentical(t *testing.T) {
	space, obj, eval := ckptSpace(t)
	for _, seed := range []int64{1, 7, 42} {
		engine, err := New(space, obj, eval, ckptConfig(seed), nil)
		if err != nil {
			t.Fatal(err)
		}
		want := engine.Run()

		for _, killAfter := range []int{0, 1, 5, 17, 29} {
			// Phase 1: run with checkpointing, cancel once generation
			// killAfter's evaluation begins.
			ctx, cancel := context.WithCancel(context.Background())
			var last *Snapshot
			cfg := ckptConfig(seed)
			cfg.Checkpoint = func(s *Snapshot) error {
				last = s
				if s.Generation > killAfter {
					cancel() // kill mid-search; detected inside evaluate
				}
				return nil
			}
			interruptedEngine, err := New(space, obj, eval, cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			partial, err := interruptedEngine.RunContext(ctx)
			cancel()
			if err != nil {
				t.Fatalf("seed %d kill %d: %v", seed, killAfter, err)
			}
			if !partial.Interrupted {
				t.Fatalf("seed %d kill %d: run was not interrupted", seed, killAfter)
			}
			if last == nil {
				t.Fatalf("seed %d kill %d: no checkpoint written", seed, killAfter)
			}

			// Phase 2: resume from the final checkpoint and finish.
			cfg2 := ckptConfig(seed)
			cfg2.Resume = last
			resumedEngine, err := New(space, obj, eval, cfg2, nil)
			if err != nil {
				t.Fatal(err)
			}
			got, err := resumedEngine.RunContext(context.Background())
			if err != nil {
				t.Fatalf("seed %d kill %d: resume: %v", seed, killAfter, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d kill %d: resumed result differs\n got: %+v\nwant: %+v",
					seed, killAfter, got, want)
			}
		}
	}
}

// TestResumeAfterMidGenerationCancel cancels from inside the evaluator (a
// timeout storm mid-generation), so some of the generation's points are
// evaluated and some are not, then resumes and expects byte-identical
// results: the partially evaluated generation is discarded with its cache
// side effects.
func TestResumeAfterMidGenerationCancel(t *testing.T) {
	space, obj, eval := ckptSpace(t)
	const seed = 11
	engine, err := New(space, obj, eval, ckptConfig(seed), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := engine.Run()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	killAt := int64(want.DistinctEvals / 2) // guaranteed mid-search
	if killAt < 1 {
		t.Fatalf("run too small to interrupt: %d distinct evals", want.DistinctEvals)
	}
	var calls atomic.Int64
	stormEval := func(pt param.Point) (metrics.Metrics, error) {
		if calls.Add(1) == killAt { // partway through some generation
			cancel()
		}
		return eval(pt)
	}
	var last *Snapshot
	cfg := ckptConfig(seed)
	cfg.CheckpointEvery = 4
	cfg.Checkpoint = func(s *Snapshot) error { last = s; return nil }
	stormEngine, err := New(space, obj, stormEval, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	partial, err := stormEngine.RunContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !partial.Interrupted || last == nil {
		t.Fatalf("interrupted=%v checkpoint=%v", partial.Interrupted, last != nil)
	}

	cfg2 := ckptConfig(seed)
	cfg2.Resume = last
	resumed, err := New(space, obj, eval, cfg2, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := resumed.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed result differs\n got: %+v\nwant: %+v", got, want)
	}
}

// TestPeriodicCheckpointsDoNotPerturb proves checkpointing is purely
// observational: a run with per-generation checkpoints returns exactly the
// result of a run without them.
func TestPeriodicCheckpointsDoNotPerturb(t *testing.T) {
	space, obj, eval := ckptSpace(t)
	plainEngine, err := New(space, obj, eval, ckptConfig(3), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := plainEngine.Run()

	cfg := ckptConfig(3)
	cfg.CheckpointEvery = 1
	count := 0
	cfg.Checkpoint = func(s *Snapshot) error { count++; return nil }
	ckptEngine, err := New(space, obj, eval, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ckptEngine.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if count == 0 {
		t.Fatal("checkpoint func never called")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("checkpointed run differs\n got: %+v\nwant: %+v", got, want)
	}
}

// TestResumeValidation rejects snapshots that do not belong to the run.
func TestResumeValidation(t *testing.T) {
	space, obj, eval := ckptSpace(t)
	var snap *Snapshot
	cfg := ckptConfig(5)
	// Keep the last snapshot, so snap.Generation is deep in the run and the
	// shrunk-Generations case below stays a real (non-defaulted) config.
	cfg.Checkpoint = func(s *Snapshot) error { snap = s; return nil }
	engine, err := New(space, obj, eval, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.RunContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("no snapshot captured")
	}

	cases := []struct {
		name   string
		mutate func(Config) Config
	}{
		{"wrong seed", func(c Config) Config { c.Seed = 999; return c }},
		{"wrong population", func(c Config) Config { c.PopulationSize = 6; return c }},
		{"too few generations", func(c Config) Config { c.Generations = snap.Generation - 1; return c }},
	}
	for _, tc := range cases {
		cfg2 := tc.mutate(ckptConfig(5))
		cfg2.Resume = snap
		engine2, err := New(space, obj, eval, cfg2, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := engine2.RunContext(context.Background()); err == nil {
			t.Errorf("%s: resume accepted", tc.name)
		}
	}
}
