package ga

import (
	"io"
	"reflect"
	"testing"

	"nautilus/internal/metrics"
	"nautilus/internal/telemetry"
)

// TestTelemetryDoesNotPerturbSearch is the determinism half of the
// telemetry contract: the same seed produces byte-identical results with
// telemetry disabled, collected, journaled, or teed - at any parallelism.
func TestTelemetryDoesNotPerturbSearch(t *testing.T) {
	s, eval := quadSpace()
	obj := metrics.MinimizeMetric("cost")
	run := func(rec telemetry.Recorder, par int) Result {
		e, err := New(s, obj, eval, Config{Seed: 7, Generations: 25, Parallelism: par, Recorder: rec}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return e.Run()
	}
	want := run(nil, 1)
	cases := map[string]telemetry.Recorder{
		"nop":       telemetry.Nop,
		"collector": telemetry.NewCollector(nil),
		"journal":   telemetry.NewJournal(io.Discard),
		"multi":     telemetry.Multi(telemetry.NewCollector(nil), telemetry.NewJournal(io.Discard)),
	}
	for name, rec := range cases {
		for _, par := range []int{1, 4} {
			if got := run(rec, par); !reflect.DeepEqual(got, want) {
				t.Errorf("recorder %q at parallelism %d changed the result:\n got %+v\nwant %+v",
					name, par, got, want)
			}
		}
	}
}

// TestCollectorSeesRun checks the engine actually reports generations,
// evaluations, cache lookups, and pool events through the recorder.
func TestCollectorSeesRun(t *testing.T) {
	s, eval := quadSpace()
	col := telemetry.NewCollector(nil)
	e, err := New(s, metrics.MinimizeMetric("cost"), eval,
		Config{Seed: 7, Generations: 10, Recorder: col}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run()

	snap := col.Registry().Snapshot()
	if got := snap.Counters[telemetry.MetricGenerations]; got != 11 {
		t.Errorf("generations counter = %d, want 11", got)
	}
	wantEvals := int64(11 * e.Config().PopulationSize)
	if got := snap.Counters[telemetry.MetricEvaluations]; got != wantEvals {
		t.Errorf("evaluations counter = %d, want %d", got, wantEvals)
	}
	misses := snap.Counters[telemetry.MetricCacheMisses]
	hits := snap.Counters[telemetry.MetricCacheHits]
	if int(misses) != res.DistinctEvals {
		t.Errorf("cache misses %d != distinct evals %d", misses, res.DistinctEvals)
	}
	if int(hits+misses) != res.Cache.Total {
		t.Errorf("cache events %d != total queries %d", hits+misses, res.Cache.Total)
	}
	// This run has Parallelism 1, so adaptive dispatch takes the inline
	// single path: every evaluation is a pool task, exactly like the
	// legacy point-at-a-time dispatch.
	if got := snap.Counters[telemetry.MetricPoolTasks]; got != wantEvals {
		t.Errorf("pool tasks = %d, want %d (evaluations)", got, wantEvals)
	}
	gens := col.Generations()
	if len(gens) != 11 {
		t.Fatalf("collector retained %d generations, want 11", len(gens))
	}
	last := gens[len(gens)-1]
	if last.BestValue != res.BestValue {
		t.Errorf("last generation best %v != result best %v", last.BestValue, res.BestValue)
	}
	if last.DistinctEvals != res.DistinctEvals {
		t.Errorf("last generation distinct %d != result %d", last.DistinctEvals, res.DistinctEvals)
	}
}

// TestResultCacheStats checks the run's cache accounting: total queries
// are population * generations, and hits + distinct = total.
func TestResultCacheStats(t *testing.T) {
	s, eval := quadSpace()
	e, err := New(s, metrics.MinimizeMetric("cost"), eval, Config{Seed: 3, Generations: 20}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run()
	st := res.Cache
	wantTotal := 21 * e.Config().PopulationSize
	if st.Total != wantTotal {
		t.Errorf("total queries = %d, want %d", st.Total, wantTotal)
	}
	if st.Distinct != res.DistinctEvals {
		t.Errorf("stats distinct %d != result distinct %d", st.Distinct, res.DistinctEvals)
	}
	if st.Hits != st.Total-st.Distinct {
		t.Errorf("hits %d != total-distinct %d", st.Hits, st.Total-st.Distinct)
	}
	wantRate := float64(st.Hits) / float64(st.Total)
	if st.HitRate != wantRate {
		t.Errorf("hit rate %v, want %v", st.HitRate, wantRate)
	}
	if st.HitRate <= 0 {
		t.Error("a converging GA should revisit designs, hit rate was 0")
	}
}

// BenchmarkRunTelemetryNop is BenchmarkRun with the no-op recorder wired
// explicitly: comparing allocs/op against BenchmarkRun demonstrates that
// disabled telemetry adds zero allocations to the GA hot loop.
func BenchmarkRunTelemetryNop(b *testing.B) {
	b.ReportAllocs()
	s, eval := quadSpace()
	for i := 0; i < b.N; i++ {
		e, err := New(s, metrics.MinimizeMetric("cost"), eval,
			Config{Seed: int64(i), Recorder: telemetry.Nop}, nil)
		if err != nil {
			b.Fatal(err)
		}
		e.Run()
	}
}

// TestNopTelemetryAddsNoAllocs verifies the same property deterministically
// in the test suite: an identical run allocates exactly as much with the
// no-op recorder wired as with no recorder configured at all.
func TestNopTelemetryAddsNoAllocs(t *testing.T) {
	s, eval := quadSpace()
	obj := metrics.MinimizeMetric("cost")
	measure := func(rec telemetry.Recorder) float64 {
		return testing.AllocsPerRun(10, func() {
			e, err := New(s, obj, eval, Config{Seed: 11, Generations: 15, Recorder: rec}, nil)
			if err != nil {
				t.Fatal(err)
			}
			e.Run()
		})
	}
	// A per-event allocation would add one malloc per evaluation/hint/pool
	// record - hundreds per run. Allow ~1% slack for runtime noise (the
	// race detector's own bookkeeping allocates nondeterministically).
	base, nop := measure(nil), measure(telemetry.Nop)
	if nop > base+base/100+1 {
		t.Errorf("Nop recorder added allocations: %v vs %v without", nop, base)
	}
}
