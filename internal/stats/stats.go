// Package stats aggregates multi-run search results: summary statistics,
// best-so-far curves on a common evaluation grid, and evals-to-quality
// accounting. The paper averages each experiment over 20-40 runs to smooth
// the stochastic search process; this package implements that methodology.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"nautilus/internal/ga"
	"nautilus/internal/metrics"
)

// Mean returns the arithmetic mean (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (NaN for fewer than two
// values).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Median returns the median (NaN for empty input).
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-quantile (q in [0,1]) using nearest-rank on a
// sorted copy.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	return sorted[int(q*float64(len(sorted)-1))]
}

// Summary bundles the descriptive statistics of a sample.
type Summary struct {
	N           int
	Mean        float64
	StdDev      float64
	Min, Median float64
	Max         float64
}

// Summarize computes a Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Quantile(xs, 0),
		Median: Median(xs),
		Max:    Quantile(xs, 1),
	}
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.3g min=%.4g med=%.4g max=%.4g",
		s.N, s.Mean, s.StdDev, s.Min, s.Median, s.Max)
}

// CurvePoint is one sample of an averaged best-so-far curve: after X
// distinct evaluations, the mean best objective value across runs is Y.
// Runs counts how many runs had produced a feasible value by X.
type CurvePoint struct {
	X    int
	Y    float64
	Runs int
}

// Curve is an averaged search trajectory, the form the paper's Figures 3-7
// plot.
type Curve []CurvePoint

// EvalGrid builds an evaluation-count grid of roughly `points` entries from
// 1 to max (inclusive), spaced evenly.
func EvalGrid(max, points int) []int {
	if max < 1 {
		return nil
	}
	if points < 2 || points > max {
		points = max
	}
	grid := make([]int, 0, points)
	for i := 0; i < points; i++ {
		x := 1 + int(math.Round(float64(i)*float64(max-1)/float64(points-1)))
		if len(grid) == 0 || x > grid[len(grid)-1] {
			grid = append(grid, x)
		}
	}
	return grid
}

// valueAt returns the best value a run had achieved once it had spent at
// most x distinct evaluations, and whether any feasible value existed yet.
func valueAt(res ga.Result, obj metrics.Objective, x int) (float64, bool) {
	best := obj.Worst()
	found := false
	for _, gp := range res.Trajectory {
		if gp.DistinctEvals > x {
			break
		}
		if gp.BestValue != obj.Worst() {
			best = gp.BestValue
			found = true
		}
	}
	return best, found
}

// AverageTrajectories resamples each run's best-so-far trajectory onto the
// grid (as a step function of distinct evaluations) and averages across
// runs. Grid points where no run had found a feasible value yet are
// omitted.
func AverageTrajectories(results []ga.Result, obj metrics.Objective, grid []int) Curve {
	var curve Curve
	for _, x := range grid {
		sum := 0.0
		n := 0
		for _, res := range results {
			if v, ok := valueAt(res, obj, x); ok {
				sum += v
				n++
			}
		}
		if n > 0 {
			curve = append(curve, CurvePoint{X: x, Y: sum / float64(n), Runs: n})
		}
	}
	return curve
}

// FinalValues extracts each run's final best value (skipping runs that
// found nothing feasible).
func FinalValues(results []ga.Result, obj metrics.Objective) []float64 {
	var out []float64
	for _, res := range results {
		if res.BestPoint != nil {
			out = append(out, res.BestValue)
		}
	}
	_ = obj
	return out
}

// Reach summarizes how many distinct evaluations runs needed to hit a
// quality target.
type Reach struct {
	// MeanEvals averages the evaluation counts of the runs that reached the
	// target (NaN if none did).
	MeanEvals float64
	// Reached and Total count successful runs and all runs.
	Reached, Total int
}

// String renders e.g. "63.4 evals (38/40 runs)".
func (r Reach) String() string {
	return fmt.Sprintf("%.1f evals (%d/%d runs)", r.MeanEvals, r.Reached, r.Total)
}

// EvalsToReach computes the Reach statistics of target under obj across
// runs.
func EvalsToReach(results []ga.Result, obj metrics.Objective, target float64) Reach {
	var evals []float64
	for _, res := range results {
		if e := res.EvalsToReach(obj, target); e >= 0 {
			evals = append(evals, float64(e))
		}
	}
	return Reach{
		MeanEvals: Mean(evals),
		Reached:   len(evals),
		Total:     len(results),
	}
}

// MeanDistinctEvals averages the total distinct evaluations across runs.
func MeanDistinctEvals(results []ga.Result) float64 {
	xs := make([]float64, len(results))
	for i, res := range results {
		xs[i] = float64(res.DistinctEvals)
	}
	return Mean(xs)
}

// CI is a bootstrap confidence interval around a sample mean.
type CI struct {
	Mean     float64
	Lo, Hi   float64
	Level    float64
	Resample int
}

// String renders e.g. "63.4 [58.1, 68.9] @95%".
func (c CI) String() string {
	return fmt.Sprintf("%.1f [%.1f, %.1f] @%d%%", c.Mean, c.Lo, c.Hi, int(c.Level*100))
}

// BootstrapCI computes a percentile-bootstrap confidence interval for the
// mean of xs at the given level (e.g. 0.95), using `resamples` bootstrap
// replicates drawn with the given seed. The paper averages noisy stochastic
// runs; the interval quantifies how trustworthy those averages are.
func BootstrapCI(xs []float64, level float64, resamples int, seed int64) CI {
	if len(xs) == 0 {
		return CI{Mean: math.NaN(), Lo: math.NaN(), Hi: math.NaN(), Level: level}
	}
	if level <= 0 || level >= 1 {
		level = 0.95
	}
	if resamples < 10 {
		resamples = 1000
	}
	r := rand.New(rand.NewSource(seed))
	means := make([]float64, resamples)
	for i := range means {
		sum := 0.0
		for j := 0; j < len(xs); j++ {
			sum += xs[r.Intn(len(xs))]
		}
		means[i] = sum / float64(len(xs))
	}
	sort.Float64s(means)
	alpha := (1 - level) / 2
	lo := means[int(alpha*float64(resamples-1))]
	hi := means[int((1-alpha)*float64(resamples-1))]
	return CI{Mean: Mean(xs), Lo: lo, Hi: hi, Level: level, Resample: resamples}
}

// ReachCI bundles evals-to-quality with a bootstrap interval over the runs
// that reached the target.
func ReachCI(results []ga.Result, obj metrics.Objective, target float64, seed int64) (Reach, CI) {
	var evals []float64
	for _, res := range results {
		if e := res.EvalsToReach(obj, target); e >= 0 {
			evals = append(evals, float64(e))
		}
	}
	reach := Reach{MeanEvals: Mean(evals), Reached: len(evals), Total: len(results)}
	return reach, BootstrapCI(evals, 0.95, 2000, seed)
}
