package stats

import (
	"math"
	"testing"
	"testing/quick"

	"nautilus/internal/ga"
	"nautilus/internal/metrics"
	"nautilus/internal/param"
)

func TestMeanStdDevMedian(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if sd := StdDev(xs); math.Abs(sd-2.138) > 0.01 {
		t.Errorf("StdDev = %v, want ~2.138 (sample)", sd)
	}
	if med := Median(xs); med < 4 || med > 5 {
		t.Errorf("Median = %v, want in [4,5]", med)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(StdDev([]float64{1})) || !math.IsNaN(Median(nil)) {
		t.Error("degenerate inputs should yield NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if q := Quantile(xs, 0); q != 1 {
		t.Errorf("Quantile(0) = %v", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Errorf("Quantile(1) = %v", q)
	}
	if q := Quantile(xs, 0.5); q != 3 {
		t.Errorf("Quantile(0.5) = %v", q)
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Error("Quantile sorted the caller's slice")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 {
		t.Errorf("Summary = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty String")
	}
	if z := Summarize(nil); z.N != 0 {
		t.Error("empty input should give zero Summary")
	}
}

func TestEvalGrid(t *testing.T) {
	g := EvalGrid(100, 5)
	if len(g) != 5 || g[0] != 1 || g[len(g)-1] != 100 {
		t.Errorf("EvalGrid = %v", g)
	}
	for i := 1; i < len(g); i++ {
		if g[i] <= g[i-1] {
			t.Fatal("grid not strictly increasing")
		}
	}
	if g := EvalGrid(3, 10); len(g) != 3 {
		t.Errorf("oversampled grid = %v, want 3 unique points", g)
	}
	if EvalGrid(0, 5) != nil {
		t.Error("EvalGrid(0) should be nil")
	}
}

func fakeResult(evals []int, values []float64) ga.Result {
	res := ga.Result{}
	for i := range evals {
		res.Trajectory = append(res.Trajectory, ga.GenPoint{
			Generation:    i,
			DistinctEvals: evals[i],
			BestValue:     values[i],
		})
	}
	res.DistinctEvals = evals[len(evals)-1]
	res.BestValue = values[len(values)-1]
	res.BestPoint = param.Point{0}
	return res
}

func TestAverageTrajectories(t *testing.T) {
	obj := metrics.MinimizeMetric("cost")
	a := fakeResult([]int{10, 20, 30}, []float64{100, 50, 20})
	b := fakeResult([]int{10, 20, 30}, []float64{80, 60, 40})
	curve := AverageTrajectories([]ga.Result{a, b}, obj, []int{10, 20, 30})
	if len(curve) != 3 {
		t.Fatalf("curve has %d points, want 3", len(curve))
	}
	want := []float64{90, 55, 30}
	for i, cp := range curve {
		if cp.Y != want[i] || cp.Runs != 2 {
			t.Errorf("curve[%d] = %+v, want Y=%v Runs=2", i, cp, want[i])
		}
	}
}

func TestAverageTrajectoriesStepSemantics(t *testing.T) {
	obj := metrics.MinimizeMetric("cost")
	a := fakeResult([]int{10, 30}, []float64{100, 20})
	// At x=20 run a has only spent 10 evals worth of progress: value 100.
	curve := AverageTrajectories([]ga.Result{a}, obj, []int{5, 20, 40})
	if len(curve) != 2 {
		t.Fatalf("curve = %+v, want 2 points (x=5 has no data)", curve)
	}
	if curve[0].X != 20 || curve[0].Y != 100 {
		t.Errorf("curve[0] = %+v, want step value 100 at x=20", curve[0])
	}
	if curve[1].X != 40 || curve[1].Y != 20 {
		t.Errorf("curve[1] = %+v", curve[1])
	}
}

func TestAverageTrajectoriesSkipsWorstSentinel(t *testing.T) {
	obj := metrics.MinimizeMetric("cost")
	a := ga.Result{Trajectory: []ga.GenPoint{
		{Generation: 0, DistinctEvals: 10, BestValue: math.Inf(1)},
		{Generation: 1, DistinctEvals: 20, BestValue: 5},
	}}
	curve := AverageTrajectories([]ga.Result{a}, obj, []int{10, 20})
	if len(curve) != 1 || curve[0].X != 20 || curve[0].Y != 5 {
		t.Errorf("curve = %+v, want single feasible point", curve)
	}
}

func TestFinalValues(t *testing.T) {
	obj := metrics.MinimizeMetric("cost")
	ok := fakeResult([]int{10}, []float64{42})
	var noPoint ga.Result
	noPoint.BestValue = math.Inf(1)
	vals := FinalValues([]ga.Result{ok, noPoint}, obj)
	if len(vals) != 1 || vals[0] != 42 {
		t.Errorf("FinalValues = %v", vals)
	}
}

func TestEvalsToReach(t *testing.T) {
	obj := metrics.MinimizeMetric("cost")
	a := fakeResult([]int{10, 20}, []float64{50, 10})
	b := fakeResult([]int{10, 20}, []float64{40, 30})
	r := EvalsToReach([]ga.Result{a, b}, obj, 35)
	if r.Total != 2 || r.Reached != 2 {
		t.Fatalf("Reach = %+v", r)
	}
	if r.MeanEvals != 20 { // both runs first drop below 35 at 20 evals
		t.Errorf("MeanEvals = %v, want 20", r.MeanEvals)
	}
	r = EvalsToReach([]ga.Result{a, b}, obj, 15)
	if r.Reached != 1 || r.MeanEvals != 20 {
		t.Errorf("Reach(15) = %+v", r)
	}
	r = EvalsToReach([]ga.Result{a, b}, obj, 1)
	if r.Reached != 0 || !math.IsNaN(r.MeanEvals) {
		t.Errorf("Reach(1) = %+v", r)
	}
	if r.String() == "" {
		t.Error("empty Reach string")
	}
}

func TestMeanDistinctEvals(t *testing.T) {
	a := fakeResult([]int{10}, []float64{1})
	b := fakeResult([]int{30}, []float64{1})
	if m := MeanDistinctEvals([]ga.Result{a, b}); m != 20 {
		t.Errorf("MeanDistinctEvals = %v, want 20", m)
	}
}

// Property: Quantile is monotone in q and bounded by min/max.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(raw []float64, qa, qb uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		a, b := float64(qa%101)/100, float64(qb%101)/100
		if a > b {
			a, b = b, a
		}
		va, vb := Quantile(raw, a), Quantile(raw, b)
		return va <= vb && va >= Quantile(raw, 0) && vb <= Quantile(raw, 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Mean lies within [min, max].
func TestQuickMeanBounded(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		m := Mean(raw)
		return m >= Quantile(raw, 0)-1e-9 && m <= Quantile(raw, 1)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBootstrapCI(t *testing.T) {
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 50 + float64(i%21) - 10 // mean 50, spread +-10
	}
	ci := BootstrapCI(xs, 0.95, 2000, 1)
	if math.Abs(ci.Mean-50) > 0.5 {
		t.Errorf("mean = %v, want ~50", ci.Mean)
	}
	if !(ci.Lo < ci.Mean && ci.Mean < ci.Hi) {
		t.Errorf("interval [%v, %v] does not bracket mean %v", ci.Lo, ci.Hi, ci.Mean)
	}
	// 200 samples of a +-10 spread: the 95% interval of the MEAN is tight.
	if ci.Hi-ci.Lo > 4 {
		t.Errorf("interval width %v implausibly wide", ci.Hi-ci.Lo)
	}
	if ci.String() == "" {
		t.Error("empty String")
	}
	// Deterministic per seed.
	ci2 := BootstrapCI(xs, 0.95, 2000, 1)
	if ci != ci2 {
		t.Error("bootstrap not deterministic per seed")
	}
	// Degenerate input.
	empty := BootstrapCI(nil, 0.95, 100, 1)
	if !math.IsNaN(empty.Mean) {
		t.Error("empty input should yield NaN mean")
	}
}

func TestReachCI(t *testing.T) {
	obj := metrics.MinimizeMetric("cost")
	var results []ga.Result
	for i := 0; i < 10; i++ {
		results = append(results, fakeResult([]int{10 + i, 30 + i}, []float64{100, 5}))
	}
	reach, ci := ReachCI(results, obj, 50, 3)
	if reach.Reached != 10 {
		t.Fatalf("reached %d, want 10", reach.Reached)
	}
	if math.Abs(ci.Mean-reach.MeanEvals) > 1e-9 {
		t.Error("CI mean disagrees with Reach mean")
	}
	if !(ci.Lo <= ci.Mean && ci.Mean <= ci.Hi) {
		t.Error("interval does not bracket mean")
	}
}
