// Package catalog is the registry of bundled IP generators and the
// optimization queries each one answers. It is the single place where an
// (ip, query) pair resolves to a design space, an evaluator, a default
// hint library, and an objective, so every front end - the nautilus CLI,
// the nautserve daemon, and tests - drives byte-identical searches from
// the same specification.
//
// Per-IP state (the space, the evaluator, and the default hint library -
// including the NoC's estimated non-expert hints, which cost ~80
// characterizations to calibrate) is built once per process and shared,
// which is what a long-lived server multiplexing many sessions over the
// same spaces needs.
package catalog

import (
	"fmt"
	"sort"
	"sync"

	"nautilus/internal/core"
	"nautilus/internal/dataset"
	"nautilus/internal/fft"
	"nautilus/internal/gemm"
	"nautilus/internal/hintcal"
	"nautilus/internal/metrics"
	"nautilus/internal/noc"
	"nautilus/internal/param"
	"nautilus/internal/rtl"
)

// Guidance levels every front end accepts. Weak and strong differ only in
// the confidence hint, per the paper's evaluation setup.
const (
	GuidanceBaseline = "baseline"
	GuidanceWeak     = "weak"
	GuidanceStrong   = "strong"

	weakConfidence   = 0.4
	strongConfidence = 0.9
)

// Entry is one resolved (ip, query) pair: everything a search needs.
type Entry struct {
	// IP and Query name the entry (e.g. "fft", "min-luts").
	IP    string
	Query string
	// Space is the IP's design space; one instance is shared per process.
	Space *param.Space
	// Eval characterizes one design point. Deterministic and safe for
	// concurrent use.
	Eval dataset.Evaluator
	// Library is the IP's default hint library (expert hints, or the NoC's
	// estimated non-expert hints).
	Library *core.Library
	// Objective is the query's optimization goal.
	Objective metrics.Objective
	// Weights expresses composite queries for hint compilation; nil means
	// the plain single-metric objective.
	Weights map[string]float64

	rtl func(pt param.Point) (*rtl.Design, error)
}

// ipState is the memoized per-IP half of an entry.
type ipState struct {
	once  sync.Once
	space *param.Space
	eval  dataset.Evaluator
	lib   *core.Library
	rtl   func(space *param.Space, pt param.Point) (*rtl.Design, error)
	err   error
}

var ipStates = map[string]*ipState{
	"noc":  {},
	"fft":  {},
	"gemm": {},
}

// build resolves the per-IP state on first use.
func (st *ipState) build(ip string) {
	switch ip {
	case "noc":
		s := noc.RouterSpace()
		st.space = s
		st.eval = func(pt param.Point) (metrics.Metrics, error) { return noc.RouterEvaluate(s, pt) }
		// Non-expert hints, estimated from ~80 synthesized designs - the
		// paper's NoC methodology.
		st.lib, _, st.err = hintcal.Estimate(s, st.eval, []string{metrics.FmaxMHz, metrics.LUTs},
			hintcal.Options{Budget: 80, Seed: 5})
		st.rtl = func(space *param.Space, pt param.Point) (*rtl.Design, error) {
			return noc.DecodeRouter(space, pt).Verilog()
		}
	case "fft":
		s := fft.Space()
		st.space = s
		st.eval = func(pt param.Point) (metrics.Metrics, error) { return fft.Evaluate(s, pt) }
		st.lib = fft.ExpertHints() // expert hints ship with the generator
		st.rtl = func(space *param.Space, pt param.Point) (*rtl.Design, error) {
			return fft.Decode(space, pt).Verilog()
		}
	case "gemm":
		s := gemm.Space()
		st.space = s
		st.eval = func(pt param.Point) (metrics.Metrics, error) { return gemm.Evaluate(s, pt) }
		st.lib = gemm.ExpertHints()
		st.rtl = func(space *param.Space, pt param.Point) (*rtl.Design, error) {
			return gemm.Decode(space, pt).Verilog()
		}
	}
}

// queries maps each IP to its query constructors. Objectives are stateless,
// so constructing one per lookup is free.
var queries = map[string]map[string]func() (metrics.Objective, map[string]float64){
	"noc": {
		"max-frequency": func() (metrics.Objective, map[string]float64) {
			return metrics.MaximizeMetric(metrics.FmaxMHz), nil
		},
		"min-luts": func() (metrics.Objective, map[string]float64) {
			return metrics.MinimizeMetric(metrics.LUTs), nil
		},
		"min-area-delay": func() (metrics.Objective, map[string]float64) {
			return metrics.AreaDelayProduct(), map[string]float64{metrics.LUTs: 1, metrics.FmaxMHz: -1}
		},
	},
	"fft": {
		"min-luts": func() (metrics.Objective, map[string]float64) {
			return metrics.MinimizeMetric(metrics.LUTs), nil
		},
		"max-throughput": func() (metrics.Objective, map[string]float64) {
			return metrics.MaximizeMetric(metrics.ThroughputMSPS), nil
		},
		"max-throughput-per-lut": func() (metrics.Objective, map[string]float64) {
			return metrics.ThroughputPerLUT(), map[string]float64{"throughput_per_lut": 1}
		},
		"max-snr": func() (metrics.Objective, map[string]float64) {
			return metrics.MaximizeMetric(metrics.SNRdB), nil
		},
	},
	"gemm": {
		"min-luts": func() (metrics.Objective, map[string]float64) {
			return metrics.MinimizeMetric(metrics.LUTs), nil
		},
		"max-gmacs": func() (metrics.Objective, map[string]float64) {
			return metrics.MaximizeMetric(gemm.MetricGMACS), nil
		},
		"max-gmacs-per-lut": func() (metrics.Objective, map[string]float64) {
			return metrics.MaximizeDerived(gemm.MetricEfficiency, metrics.Ratio(gemm.MetricGMACS, metrics.LUTs)),
				map[string]float64{gemm.MetricEfficiency: 1}
		},
	},
}

// IPs returns the bundled IP names, sorted.
func IPs() []string {
	out := make([]string, 0, len(queries))
	for ip := range queries {
		out = append(out, ip)
	}
	sort.Strings(out)
	return out
}

// Queries returns the query names the named IP answers, sorted.
func Queries(ip string) ([]string, error) {
	qs, ok := queries[ip]
	if !ok {
		return nil, fmt.Errorf("catalog: unknown IP %q (have %v)", ip, IPs())
	}
	out := make([]string, 0, len(qs))
	for q := range qs {
		out = append(out, q)
	}
	sort.Strings(out)
	return out, nil
}

// GuidanceLevels returns the accepted guidance level names.
func GuidanceLevels() []string {
	return []string{GuidanceBaseline, GuidanceWeak, GuidanceStrong}
}

// Lookup resolves an (ip, query) pair. The per-IP space, evaluator, and
// default hint library are built once per process and shared across
// entries, so concurrent sessions over the same IP see one space instance.
func Lookup(ip, query string) (*Entry, error) {
	st, ok := ipStates[ip]
	if !ok {
		return nil, fmt.Errorf("catalog: unknown IP %q (have %v)", ip, IPs())
	}
	qf, ok := queries[ip][query]
	if !ok {
		qs, _ := Queries(ip)
		return nil, fmt.Errorf("catalog: unknown %s query %q (have %v)", ip, query, qs)
	}
	st.once.Do(func() { st.build(ip) })
	if st.err != nil {
		return nil, fmt.Errorf("catalog: build %s: %w", ip, st.err)
	}
	obj, weights := qf()
	return &Entry{
		IP:        ip,
		Query:     query,
		Space:     st.space,
		Eval:      st.eval,
		Library:   st.lib,
		Objective: obj,
		Weights:   weights,
		rtl:       func(pt param.Point) (*rtl.Design, error) { return st.rtl(st.space, pt) },
	}, nil
}

// Guidance compiles the guidance for the entry at the named level
// (baseline returns nil). lib overrides the entry's default hint library
// when non-nil (e.g. a user-supplied hints file).
func (e *Entry) Guidance(level string, lib *core.Library) (*core.Guidance, error) {
	if lib == nil {
		lib = e.Library
	}
	switch level {
	case GuidanceBaseline:
		return nil, nil
	case GuidanceWeak, GuidanceStrong:
		conf := strongConfidence
		if level == GuidanceWeak {
			conf = weakConfidence
		}
		if e.Weights != nil {
			return lib.Guidance(e.Objective.Direction(), e.Weights, conf)
		}
		return lib.GuidanceForObjective(e.Objective, conf)
	default:
		return nil, fmt.Errorf("catalog: unknown guidance level %q (have %v)", level, GuidanceLevels())
	}
}

// RTL emits the Verilog design for a point of the entry's space.
func (e *Entry) RTL(pt param.Point) (*rtl.Design, error) {
	return e.rtl(pt)
}
