package catalog

import (
	"testing"

	"nautilus/internal/ga"
)

func TestLookupAllPairs(t *testing.T) {
	for _, ip := range IPs() {
		qs, err := Queries(ip)
		if err != nil {
			t.Fatalf("Queries(%s): %v", ip, err)
		}
		if len(qs) == 0 {
			t.Fatalf("IP %s has no queries", ip)
		}
		for _, q := range qs {
			e, err := Lookup(ip, q)
			if err != nil {
				t.Fatalf("Lookup(%s,%s): %v", ip, q, err)
			}
			if e.Space == nil || e.Eval == nil || e.Library == nil || e.Objective.Name() == "" {
				t.Fatalf("Lookup(%s,%s): incomplete entry", ip, q)
			}
			for _, level := range GuidanceLevels() {
				g, err := e.Guidance(level, nil)
				if err != nil {
					t.Fatalf("Guidance(%s,%s,%s): %v", ip, q, level, err)
				}
				if (g == nil) != (level == GuidanceBaseline) {
					t.Fatalf("Guidance(%s,%s,%s): nil=%v", ip, q, level, g == nil)
				}
			}
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("dsp", "min-luts"); err == nil {
		t.Fatal("unknown IP accepted")
	}
	if _, err := Lookup("fft", "max-power"); err == nil {
		t.Fatal("unknown query accepted")
	}
	if _, err := Queries("dsp"); err == nil {
		t.Fatal("unknown IP accepted by Queries")
	}
	e, err := Lookup("fft", "min-luts")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Guidance("medium", nil); err == nil {
		t.Fatal("unknown guidance level accepted")
	}
}

// TestSpaceShared asserts the per-IP space is one shared instance - the
// invariant the server's per-space shared cache keys off.
func TestSpaceShared(t *testing.T) {
	a, err := Lookup("gemm", "min-luts")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Lookup("gemm", "max-gmacs")
	if err != nil {
		t.Fatal(err)
	}
	if a.Space != b.Space {
		t.Fatal("two lookups of the same IP returned distinct space instances")
	}
}

// TestDeterministicSearch pins the catalog path to the search result the
// pre-refactor CLI produced: same entry, same config, same best point.
func TestDeterministicSearch(t *testing.T) {
	e, err := Lookup("fft", "min-luts")
	if err != nil {
		t.Fatal(err)
	}
	g, err := e.Guidance(GuidanceStrong, nil)
	if err != nil {
		t.Fatal(err)
	}
	run := func() string {
		eng, err := ga.New(e.Space, e.Objective, e.Eval,
			ga.Config{PopulationSize: 6, Generations: 5, Seed: 3}, g)
		if err != nil {
			t.Fatal(err)
		}
		res := eng.Run()
		if res.BestPoint == nil {
			t.Fatal("no feasible point")
		}
		return e.Space.Describe(res.BestPoint)
	}
	first := run()
	if second := run(); first != second {
		t.Fatalf("catalog searches not deterministic: %q vs %q", first, second)
	}
}
