// Package fxpfft is a bit-accurate fixed-point FFT functional model. The
// hardware generator in internal/fft predicts numerical quality (SNR) from
// an analytical model; this package *measures* it by actually executing the
// quantized datapath - radix-2^k butterfly stages with configurable word
// width and rounding mode - against a double-precision reference transform.
// It is the simulation half of the paper's characterization flow for the
// FFT IP (the paper's dataset includes "metrics specific to the IP domain
// (e.g., SNR values for the FFT IP)").
package fxpfft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
	"math/rand"
)

// Rounding modes, matching the hardware generator's vocabulary.
const (
	RoundTruncate   = "truncate"
	RoundNearest    = "round"
	RoundConvergent = "convergent"
	RoundBlockFloat = "block_float"
)

// Config describes one fixed-point FFT datapath.
type Config struct {
	// N is the transform length (power of two, 4..65536).
	N int
	// DataWidth is the two's-complement word width per real/imaginary
	// component, 4..30 bits.
	DataWidth int
	// Radix is the butterfly radix (2, 4, 8, or 16): the datapath rounds
	// and rescales once per radix-R stage rather than per radix-2 level,
	// which is why larger radices lose less precision.
	Radix int
	// Rounding selects the post-stage rounding mode.
	Rounding string
}

func (c Config) validate() error {
	if c.N < 4 || c.N > 1<<16 || c.N&(c.N-1) != 0 {
		return fmt.Errorf("fxpfft: N=%d must be a power of two in [4, 65536]", c.N)
	}
	if c.DataWidth < 4 || c.DataWidth > 30 {
		return fmt.Errorf("fxpfft: data width %d outside [4,30]", c.DataWidth)
	}
	switch c.Radix {
	case 2, 4, 8, 16:
	default:
		return fmt.Errorf("fxpfft: radix %d not in {2,4,8,16}", c.Radix)
	}
	switch c.Rounding {
	case RoundTruncate, RoundNearest, RoundConvergent, RoundBlockFloat:
	default:
		return fmt.Errorf("fxpfft: unknown rounding mode %q", c.Rounding)
	}
	return nil
}

// fxp is a fixed-point complex sample. Components are integers in
// Q1.(dw-1) format (one sign bit, dw-1 fraction bits).
type fxp struct {
	re, im int64
}

// Transform computes the N-point FFT of input (complex samples with
// |re|,|im| <= 1) through the quantized datapath and returns the result
// rescaled to reference magnitude (i.e. comparable to a float FFT of the
// same input divided by N... the model applies 1/2 scaling per radix-2
// level, so the output equals FFT(x)/N up to quantization error).
func Transform(cfg Config, input []complex128) ([]complex128, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(input) != cfg.N {
		return nil, fmt.Errorf("fxpfft: input length %d != N=%d", len(input), cfg.N)
	}
	dw := cfg.DataWidth
	one := float64(int64(1) << uint(dw-1))
	maxV := int64(1)<<uint(dw-1) - 1
	minV := -(int64(1) << uint(dw-1))

	quant := func(v float64) int64 {
		x := int64(math.Round(v * one))
		if x > maxV {
			x = maxV
		}
		if x < minV {
			x = minV
		}
		return x
	}

	// Quantize input and apply bit-reversal permutation (DIT).
	levels := bits.TrailingZeros(uint(cfg.N))
	data := make([]fxp, cfg.N)
	for i, v := range input {
		j := reverseBits(i, levels)
		data[j] = fxp{re: quant(real(v)), im: quant(imag(v))}
	}

	// Twiddle table quantized to the same width.
	tw := make([]fxp, cfg.N/2)
	for k := range tw {
		w := cmplx.Exp(complex(0, -2*math.Pi*float64(k)/float64(cfg.N)))
		tw[k] = fxp{re: quant(real(w)), im: quant(imag(w))}
	}

	levelsPerStage := bits.TrailingZeros(uint(cfg.Radix))
	exponent := 0 // block-float: deferred scalings

	for level := 0; level < levels; level++ {
		span := 1 << uint(level)
		// Radix-2 DIT level with full-precision products.
		for start := 0; start < cfg.N; start += span * 2 {
			for k := 0; k < span; k++ {
				i, j := start+k, start+k+span
				w := tw[k*(cfg.N/(2*span))]
				// t = data[j] * w at double precision (Q2.(2dw-2)).
				tr := data[j].re*w.re - data[j].im*w.im
				ti := data[j].re*w.im + data[j].im*w.re
				// Back to Q1.(dw-1): shift by dw-1 with nearest rounding
				// (multiplier outputs are always rounded in hardware).
				tr = shiftRound(tr, uint(dw-1))
				ti = shiftRound(ti, uint(dw-1))
				ar, ai := data[i].re, data[i].im
				data[i] = fxp{re: ar + tr, im: ai + ti}
				data[j] = fxp{re: ar - tr, im: ai - ti}
			}
		}
		// Stage boundary: rescale by 1/2 per level inside the stage, with
		// the configured rounding mode. Block floating point skips the
		// shift while headroom remains, tracking a shared exponent.
		if (level+1)%levelsPerStage == 0 || level == levels-1 {
			shifts := levelsPerStage
			if rem := (level + 1) % levelsPerStage; rem != 0 {
				shifts = rem // final partial (mixed-radix) stage
			}
			for s := 0; s < shifts; s++ {
				if cfg.Rounding == RoundBlockFloat && headroom(data, dw) >= 2 {
					exponent++ // keep the bit, remember the scale
					continue
				}
				for i := range data {
					data[i].re = scaleHalf(data[i].re, cfg.Rounding)
					data[i].im = scaleHalf(data[i].im, cfg.Rounding)
				}
			}
			// Saturate to the word width (overflow clamps, as in hardware).
			for i := range data {
				data[i].re = clampI(data[i].re, minV, maxV)
				data[i].im = clampI(data[i].im, minV, maxV)
			}
		}
	}

	out := make([]complex128, cfg.N)
	scale := 1.0 / one / math.Pow(2, float64(exponent))
	for i, v := range data {
		out[i] = complex(float64(v.re)*scale, float64(v.im)*scale)
	}
	return out, nil
}

// headroom returns how many unused magnitude bits the block has within a
// dw-bit word: (dw-1) minus the bit length of the largest component
// magnitude. Block floating point skips a rescale while headroom remains,
// trading word-width slack for a shared exponent.
func headroom(data []fxp, dw int) int {
	var maxAbs int64
	for _, v := range data {
		if a := absI(v.re); a > maxAbs {
			maxAbs = a
		}
		if a := absI(v.im); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return dw - 1
	}
	return (dw - 1) - bits.Len64(uint64(maxAbs))
}

// scaleHalf divides by two under the given rounding mode.
func scaleHalf(v int64, mode string) int64 {
	switch mode {
	case RoundTruncate:
		return v >> 1
	case RoundNearest:
		return (v + 1) >> 1
	case RoundConvergent:
		q := v >> 1
		if v&1 != 0 && q&1 != 0 { // exactly .5 and quotient odd: round to even
			q++
		}
		return q
	case RoundBlockFloat:
		return (v + 1) >> 1 // when forced to shift, round to nearest
	}
	return v >> 1
}

// shiftRound performs a nearest-rounding arithmetic right shift.
func shiftRound(v int64, sh uint) int64 {
	return (v + 1<<(sh-1)) >> sh
}

func reverseBits(x, n int) int {
	out := 0
	for i := 0; i < n; i++ {
		out = out<<1 | (x & 1)
		x >>= 1
	}
	return out
}

func absI(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func clampI(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ReferenceFFT computes the exact double-precision FFT scaled by 1/N (so
// its output is directly comparable to Transform's).
func ReferenceFFT(input []complex128) []complex128 {
	out := refRecurse(input)
	scale := complex(1/float64(len(input)), 0)
	for i := range out {
		out[i] *= scale
	}
	return out
}

// refRecurse is the unscaled recursive FFT used by ReferenceFFT.
func refRecurse(input []complex128) []complex128 {
	n := len(input)
	if n == 1 {
		return []complex128{input[0]}
	}
	even := make([]complex128, n/2)
	odd := make([]complex128, n/2)
	for i := 0; i < n/2; i++ {
		even[i], odd[i] = input[2*i], input[2*i+1]
	}
	fe, fo := refRecurse(even), refRecurse(odd)
	out := make([]complex128, n)
	for k := 0; k < n/2; k++ {
		w := cmplx.Exp(complex(0, -2*math.Pi*float64(k)/float64(n)))
		out[k] = fe[k] + w*fo[k]
		out[k+n/2] = fe[k] - w*fo[k]
	}
	return out
}

// MeasureSNR runs `trials` random-input transforms through the quantized
// datapath and returns the measured signal-to-noise ratio in dB against the
// double-precision reference.
func MeasureSNR(cfg Config, trials int, seed int64) (float64, error) {
	if err := cfg.validate(); err != nil {
		return 0, err
	}
	if trials < 1 {
		trials = 1
	}
	r := rand.New(rand.NewSource(seed))
	var sigPow, errPow float64
	for tr := 0; tr < trials; tr++ {
		in := make([]complex128, cfg.N)
		for i := range in {
			// Amplitude headroom of 0.5 avoids input-stage saturation.
			in[i] = complex(r.Float64()-0.5, r.Float64()-0.5)
		}
		ref := ReferenceFFT(in)
		got, err := Transform(cfg, in)
		if err != nil {
			return 0, err
		}
		for i := range ref {
			d := got[i] - ref[i]
			sigPow += real(ref[i])*real(ref[i]) + imag(ref[i])*imag(ref[i])
			errPow += real(d)*real(d) + imag(d)*imag(d)
		}
	}
	if errPow == 0 {
		return math.Inf(1), nil
	}
	return 10 * math.Log10(sigPow/errPow), nil
}
