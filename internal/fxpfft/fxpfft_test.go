package fxpfft

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func cfg(n, dw, radix int, rounding string) Config {
	return Config{N: n, DataWidth: dw, Radix: radix, Rounding: rounding}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		cfg(3, 16, 2, RoundNearest),     // not power of two
		cfg(2, 16, 2, RoundNearest),     // too small
		cfg(1<<17, 16, 2, RoundNearest), // too big
		cfg(64, 2, 2, RoundNearest),     // width too small
		cfg(64, 40, 2, RoundNearest),    // width too big
		cfg(64, 16, 3, RoundNearest),    // bad radix
		cfg(64, 16, 2, "stochastic"),    // bad rounding
	}
	for i, c := range bad {
		if _, err := Transform(c, make([]complex128, c.N)); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, c)
		}
	}
	if _, err := Transform(cfg(64, 16, 2, RoundNearest), make([]complex128, 32)); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestReferenceFFTImpulse(t *testing.T) {
	// FFT of a unit impulse is flat: all bins = 1/N.
	n := 64
	in := make([]complex128, n)
	in[0] = 1
	out := ReferenceFFT(in)
	for k, v := range out {
		if cmplx.Abs(v-complex(1.0/float64(n), 0)) > 1e-12 {
			t.Fatalf("bin %d = %v, want 1/N", k, v)
		}
	}
}

func TestReferenceFFTSine(t *testing.T) {
	// A pure complex exponential at bin 5 lands entirely in bin 5.
	n := 128
	in := make([]complex128, n)
	for i := range in {
		in[i] = cmplx.Exp(complex(0, 2*math.Pi*5*float64(i)/float64(n)))
	}
	out := ReferenceFFT(in)
	if cmplx.Abs(out[5]-1) > 1e-10 {
		t.Errorf("bin 5 = %v, want 1", out[5])
	}
	for k, v := range out {
		if k != 5 && cmplx.Abs(v) > 1e-10 {
			t.Errorf("leakage at bin %d: %v", k, v)
		}
	}
}

func TestReferenceParseval(t *testing.T) {
	// Energy conservation: sum |x|^2 = N * sum |X|^2 (with our 1/N scale).
	n := 256
	in := make([]complex128, n)
	for i := range in {
		in[i] = complex(math.Sin(float64(i)*0.37), math.Cos(float64(i)*1.13)/2)
	}
	out := ReferenceFFT(in)
	var et, ef float64
	for i := 0; i < n; i++ {
		et += real(in[i])*real(in[i]) + imag(in[i])*imag(in[i])
		ef += real(out[i])*real(out[i]) + imag(out[i])*imag(out[i])
	}
	if math.Abs(et-ef*float64(n))/et > 1e-10 {
		t.Errorf("Parseval violated: time %v vs freq*N %v", et, ef*float64(n))
	}
}

func TestTransformMatchesReferenceAtHighPrecision(t *testing.T) {
	// A 24-bit datapath should match the float reference to ~1e-4.
	n := 256
	in := make([]complex128, n)
	for i := range in {
		in[i] = complex(math.Sin(float64(i)*0.7)/2, math.Cos(float64(i)*0.3)/2)
	}
	ref := ReferenceFFT(in)
	got, err := Transform(cfg(n, 24, 2, RoundNearest), in)
	if err != nil {
		t.Fatal(err)
	}
	var maxErr float64
	for i := range ref {
		if e := cmplx.Abs(got[i] - ref[i]); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 1e-4 {
		t.Errorf("24-bit transform deviates by %v from reference", maxErr)
	}
}

func TestTransformImpulseAllRadices(t *testing.T) {
	n := 256
	in := make([]complex128, n)
	in[0] = complex(0.5, 0)
	for _, radix := range []int{2, 4, 8, 16} {
		got, err := Transform(cfg(n, 18, radix, RoundNearest), in)
		if err != nil {
			t.Fatalf("radix %d: %v", radix, err)
		}
		want := 0.5 / float64(n)
		for k, v := range got {
			if math.Abs(real(v)-want) > 1e-3 || math.Abs(imag(v)) > 1e-3 {
				t.Fatalf("radix %d: bin %d = %v, want %v", radix, k, v, want)
			}
		}
	}
}

func TestMeasuredSNRScalesWithWidth(t *testing.T) {
	// The headline hardware truth: ~6 dB per bit.
	prev := -math.MaxFloat64
	for _, dw := range []int{8, 12, 16, 20} {
		snr, err := MeasureSNR(cfg(256, dw, 2, RoundNearest), 3, 1)
		if err != nil {
			t.Fatal(err)
		}
		if snr <= prev {
			t.Fatalf("SNR not increasing with width: dw=%d gives %v after %v", dw, snr, prev)
		}
		gain := snr - prev
		if prev != -math.MaxFloat64 && (gain < 12 || gain > 36) {
			t.Errorf("SNR gain for +4 bits = %v dB, want ~24", gain)
		}
		prev = snr
	}
}

func TestMeasuredSNRDegradesWithSize(t *testing.T) {
	small, err := MeasureSNR(cfg(64, 12, 2, RoundNearest), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	big, err := MeasureSNR(cfg(4096, 12, 2, RoundNearest), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if big >= small {
		t.Errorf("SNR should degrade with transform size: N=64 %v vs N=4096 %v", small, big)
	}
}

func TestRoundingModeOrdering(t *testing.T) {
	// Truncation biases every stage and must measure worst; block floating
	// point preserves magnitude bits and must measure best.
	measure := func(mode string) float64 {
		snr, err := MeasureSNR(cfg(1024, 10, 2, mode), 2, 3)
		if err != nil {
			t.Fatal(err)
		}
		return snr
	}
	trunc := measure(RoundTruncate)
	nearest := measure(RoundNearest)
	bf := measure(RoundBlockFloat)
	if nearest <= trunc {
		t.Errorf("round-to-nearest (%v dB) should beat truncation (%v dB)", nearest, trunc)
	}
	if bf <= nearest {
		t.Errorf("block floating point (%v dB) should beat round-to-nearest (%v dB)", bf, nearest)
	}
}

func TestLargerRadixLosesLessPrecision(t *testing.T) {
	// Fewer rounding boundaries per transform: radix-16 should beat radix-2
	// at the same narrow width.
	r2, err := MeasureSNR(cfg(4096, 8, 2, RoundTruncate), 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	r16, err := MeasureSNR(cfg(4096, 8, 16, RoundTruncate), 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r16 <= r2 {
		t.Errorf("radix-16 SNR %v should exceed radix-2 %v at 8 bits", r16, r2)
	}
}

func TestMeasuredSNRValidatesAnalyticalModel(t *testing.T) {
	// The hardware generator's calibrated SNR law (6.02*dw - 15 -
	// 3*log2(N) + 0.9*log2(radix) + rounding bonus; see internal/fft)
	// should track the measured datapath within a few dB over the
	// generator's parameter range.
	for _, dw := range []int{10, 14, 18} {
		for _, n := range []int{256, 1024} {
			predicted := 6.02*float64(dw) - 15 - 3*math.Log2(float64(n)) + 0.9*math.Log2(4) + 0.2
			measured, err := MeasureSNR(cfg(n, dw, 4, RoundNearest), 2, 7)
			if err != nil {
				t.Fatal(err)
			}
			if diff := math.Abs(predicted - measured); diff > 6 {
				t.Errorf("dw=%d N=%d: model %v dB vs measured %v dB (diff %v)",
					dw, n, predicted, measured, diff)
			}
		}
	}
}

func TestMeasureSNRDeterministic(t *testing.T) {
	a, err := MeasureSNR(cfg(128, 12, 2, RoundNearest), 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := MeasureSNR(cfg(128, 12, 2, RoundNearest), 2, 9)
	if a != b {
		t.Error("MeasureSNR not deterministic per seed")
	}
}

func TestScaleHalfModes(t *testing.T) {
	cases := []struct {
		v    int64
		mode string
		want int64
	}{
		{5, RoundTruncate, 2},
		{-5, RoundTruncate, -3}, // arithmetic shift floors
		{5, RoundNearest, 3},
		{-5, RoundNearest, -2},
		{6, RoundConvergent, 3},
		{5, RoundConvergent, 2}, // 2.5 -> 2 (even)
		{7, RoundConvergent, 4}, // 3.5 -> 4 (even)
		{9, RoundConvergent, 4}, // 4.5 -> 4 (even)
	}
	for _, c := range cases {
		if got := scaleHalf(c.v, c.mode); got != c.want {
			t.Errorf("scaleHalf(%d, %s) = %d, want %d", c.v, c.mode, got, c.want)
		}
	}
}

// Property: the quantized transform's output never exceeds the
// representable range after rescaling (saturation works).
func TestQuickTransformBounded(t *testing.T) {
	f := func(seed int64) bool {
		in := make([]complex128, 64)
		r := seed
		next := func() float64 {
			r = r*6364136223846793005 + 1442695040888963407
			return float64(int32(r>>33)) / (1 << 31)
		}
		for i := range in {
			in[i] = complex(next()/2, next()/2)
		}
		out, err := Transform(cfg(64, 12, 2, RoundNearest), in)
		if err != nil {
			return false
		}
		for _, v := range out {
			if math.Abs(real(v)) > 1.1 || math.Abs(imag(v)) > 1.1 {
				return false
			}
			if math.IsNaN(real(v)) || math.IsNaN(imag(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: linearity within quantization error - transforming a scaled
// impulse scales the flat spectrum.
func TestQuickImpulseLinearity(t *testing.T) {
	f := func(ampRaw uint8) bool {
		amp := 0.1 + float64(ampRaw%80)/100
		in := make([]complex128, 128)
		in[0] = complex(amp, 0)
		out, err := Transform(cfg(128, 20, 2, RoundNearest), in)
		if err != nil {
			return false
		}
		want := amp / 128
		for _, v := range out {
			if math.Abs(real(v)-want) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
