package netsim

import "testing"

func TestSweepShape(t *testing.T) {
	topo, _ := Build(TopoMesh, 16)
	base := simConfig(topo, 0.1, 31)
	base.WarmupCycles, base.MeasureCycles, base.DrainCycles = 200, 400, 400
	curve, err := Sweep(base, []float64{0.4, 0.05, 0.15})
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 3 {
		t.Fatalf("curve has %d points", len(curve))
	}
	// Returned in ascending offered-load order.
	if curve[0].Offered != 0.05 || curve[2].Offered != 0.4 {
		t.Errorf("curve not sorted: %+v", curve)
	}
	// Latency is non-decreasing with load.
	if curve[2].AvgLatency < curve[0].AvgLatency {
		t.Errorf("latency decreased with load: %+v", curve)
	}
	// Below saturation, accepted tracks offered.
	if curve[0].Throughput < 0.03 || curve[0].Throughput > 0.08 {
		t.Errorf("low-load accepted %.3f at offered 0.05", curve[0].Throughput)
	}
}

func TestSweepEmpty(t *testing.T) {
	topo, _ := Build(TopoMesh, 16)
	if _, err := Sweep(simConfig(topo, 0.1, 1), nil); err == nil {
		t.Error("empty sweep accepted")
	}
}

func TestSaturationThroughput(t *testing.T) {
	mesh, _ := Build(TopoMesh, 16)
	ring, _ := Build(TopoRing, 16)
	mk := func(topo *Topology) Config {
		cfg := simConfig(topo, 0.1, 41)
		cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 200, 400, 400
		return cfg
	}
	meshSat, err := SaturationThroughput(mk(mesh), 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	ringSat, err := SaturationThroughput(mk(ring), 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	if meshSat <= 0 || meshSat > 1 || ringSat <= 0 || ringSat > 1 {
		t.Fatalf("saturation out of range: mesh %.3f ring %.3f", meshSat, ringSat)
	}
	// A 4x4 mesh has twice the ring's bisection: it must saturate higher.
	if meshSat <= ringSat {
		t.Errorf("mesh saturation %.3f <= ring %.3f", meshSat, ringSat)
	}
	// Known bound: uniform traffic on a 4x4 mesh saturates well below 1.0
	// and above the ring's ~0.25.
	if meshSat < 0.2 || meshSat > 0.95 {
		t.Errorf("mesh saturation %.3f outside plausible band", meshSat)
	}
}
