package netsim

import (
	"fmt"
	"sort"
)

// LoadPoint is one sample of a latency-throughput curve.
type LoadPoint struct {
	Offered    float64 // offered load, flits/endpoint/cycle
	Throughput float64 // accepted load
	AvgLatency float64 // cycles
}

// Sweep measures the latency-throughput curve at the given offered loads.
// Loads are simulated in ascending order; results are returned in that
// order.
func Sweep(base Config, loads []float64) ([]LoadPoint, error) {
	if len(loads) == 0 {
		return nil, fmt.Errorf("netsim: no loads to sweep")
	}
	sorted := append([]float64(nil), loads...)
	sort.Float64s(sorted)
	out := make([]LoadPoint, 0, len(sorted))
	for _, load := range sorted {
		cfg := base
		cfg.InjectionRate = load
		res, err := Run(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, LoadPoint{Offered: load, Throughput: res.Throughput, AvgLatency: res.AvgLatency})
	}
	return out, nil
}

// SaturationThroughput estimates the network's saturation point: the
// highest accepted throughput at which average latency stays below
// latencyFactor times the zero-load latency (the standard NoC saturation
// criterion). It probes by doubling then refines by bisection, using
// `probes` total simulations (default 8 when <= 0).
func SaturationThroughput(base Config, latencyFactor float64, probes int) (float64, error) {
	if latencyFactor <= 1 {
		latencyFactor = 3
	}
	if probes <= 0 {
		probes = 8
	}
	// Zero-load reference at a very light load.
	ref := base
	ref.InjectionRate = 0.02
	refRes, err := Run(ref)
	if err != nil {
		return 0, err
	}
	if refRes.PacketsMeasured == 0 {
		return 0, fmt.Errorf("netsim: no traffic at reference load")
	}
	limit := refRes.AvgLatency * latencyFactor

	lo, hi := 0.02, 1.0
	bestAccepted := refRes.Throughput
	for i := 0; i < probes; i++ {
		mid := (lo + hi) / 2
		cfg := base
		cfg.InjectionRate = mid
		res, err := Run(cfg)
		if err != nil {
			return 0, err
		}
		if res.PacketsMeasured > 0 && res.AvgLatency <= limit {
			lo = mid
			if res.Throughput > bestAccepted {
				bestAccepted = res.Throughput
			}
		} else {
			hi = mid
		}
	}
	return bestAccepted, nil
}
