package netsim

import (
	"fmt"
	"testing"
	"testing/quick"
)

func allTopologies(t *testing.T, n int) []*Topology {
	t.Helper()
	var out []*Topology
	for _, kind := range SimTopologies {
		topo, err := Build(kind, n)
		if err != nil {
			t.Fatalf("Build(%s, %d): %v", kind, n, err)
		}
		out = append(out, topo)
	}
	return out
}

func TestBuildRejectsBadCounts(t *testing.T) {
	for _, n := range []int{0, 8, 15, 63, 100} {
		if _, err := Build(TopoRing, n); err == nil {
			t.Errorf("Build(ring, %d) should fail", n)
		}
	}
	if _, err := Build("hypercube", 64); err == nil {
		t.Error("unknown topology should fail")
	}
	if _, err := Build(TopoMesh, 32); err == nil {
		t.Error("non-square mesh should fail")
	}
	if _, err := Build(TopoFatTree, 32); err == nil {
		t.Error("non-power-of-4 fat tree should fail")
	}
}

// TestNeighborSymmetry: if router A port x reaches (B, y), then B port y
// must reach (A, x) - links are bidirectional and consistently labeled.
func TestNeighborSymmetry(t *testing.T) {
	for _, topo := range allTopologies(t, 64) {
		for r := 0; r < topo.Routers; r++ {
			for p := 0; p < topo.NetPorts; p++ {
				nb := topo.neighbor[r][p]
				if nb.router < 0 {
					continue
				}
				back := topo.neighbor[nb.router][nb.port]
				if back.router != r || back.port != p {
					t.Fatalf("%s: link (%d,%d)->(%d,%d) not symmetric (back: %d,%d)",
						topo.Kind, r, p, nb.router, nb.port, back.router, back.port)
				}
			}
		}
	}
}

// TestRoutingReachesDestination walks the routing function from every
// source router to every destination endpoint and verifies it ejects at the
// right router within a hop bound, never using a dangling port, and never
// decreasing the VC class (dateline classes must be monotone for deadlock
// freedom).
func TestRoutingReachesDestination(t *testing.T) {
	for _, topo := range allTopologies(t, 64) {
		maxHops := 4 * topo.Routers // generous diameter bound
		for src := 0; src < topo.Routers; src++ {
			for dst := 0; dst < topo.Endpoints; dst++ {
				r, cls, hops := src, 0, 0
				for {
					dec := topo.route(r, dst, cls)
					if dec.ejection {
						dr, _ := topo.endpointRouter(dst)
						if r != dr {
							t.Fatalf("%s: ejected at router %d, want %d (dst %d)", topo.Kind, r, dr, dst)
						}
						break
					}
					if dec.outPort < 0 || dec.outPort >= topo.NetPorts {
						t.Fatalf("%s: bad out port %d", topo.Kind, dec.outPort)
					}
					nb := topo.neighbor[r][dec.outPort]
					if nb.router < 0 {
						t.Fatalf("%s: route used dangling port %d at router %d", topo.Kind, dec.outPort, r)
					}
					if dec.vcClass >= 0 {
						if dec.vcClass < cls {
							t.Fatalf("%s: VC class decreased %d->%d", topo.Kind, cls, dec.vcClass)
						}
						cls = dec.vcClass
					}
					if cls >= topo.VCClasses {
						t.Fatalf("%s: class %d exceeds declared classes %d", topo.Kind, cls, topo.VCClasses)
					}
					r = nb.router
					hops++
					if hops > maxHops {
						t.Fatalf("%s: no ejection after %d hops (src %d dst %d)", topo.Kind, maxHops, src, dst)
					}
				}
			}
		}
	}
}

// TestFatTreeShape checks the 4-ary n-tree structure for 64 endpoints.
func TestFatTreeShape(t *testing.T) {
	topo, err := Build(TopoFatTree, 64)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Routers != 48 { // 3 levels x 16 switches
		t.Errorf("routers = %d, want 48", topo.Routers)
	}
	// Every level-0..1 up port and level-1..2 down port must be connected;
	// top-level up ports dangle.
	perLevel := 16
	for l := 0; l < 3; l++ {
		for pos := 0; pos < perLevel; pos++ {
			r := l*perLevel + pos
			for p := 0; p < 8; p++ {
				connected := topo.neighbor[r][p].router >= 0
				up := p >= 4
				wantConnected := (up && l < 2) || (!up && l > 0)
				if connected != wantConnected {
					t.Fatalf("fat tree router %d (level %d) port %d: connected=%v, want %v",
						r, l, p, connected, wantConnected)
				}
			}
		}
	}
}

func TestRingShortestDirection(t *testing.T) {
	topo, err := Build(TopoRing, 16)
	if err != nil {
		t.Fatal(err)
	}
	// From router 0 to endpoint 3 (router 3): clockwise, 3 hops.
	hops := 0
	r, cls := 0, 0
	for {
		dec := topo.route(r, 3, cls)
		if dec.ejection {
			break
		}
		if dec.vcClass >= 0 {
			cls = dec.vcClass
		}
		r = topo.neighbor[r][dec.outPort].router
		hops++
	}
	if hops != 3 {
		t.Errorf("ring 0->3 took %d hops, want 3", hops)
	}
	// From router 0 to endpoint 14: counter-clockwise, 2 hops.
	hops, r, cls = 0, 0, 0
	for {
		dec := topo.route(r, 14, cls)
		if dec.ejection {
			break
		}
		if dec.vcClass >= 0 {
			cls = dec.vcClass
		}
		r = topo.neighbor[r][dec.outPort].router
		hops++
	}
	if hops != 2 {
		t.Errorf("ring 0->14 took %d hops, want 2", hops)
	}
}

func TestMeshXYRouting(t *testing.T) {
	topo, err := Build(TopoMesh, 16) // 4x4
	if err != nil {
		t.Fatal(err)
	}
	// Router 0 (0,0) to endpoint 15 (3,3): 3 east then 3 north = 6 hops.
	hops, r := 0, 0
	sawNorthBeforeDoneEast := false
	x := 0
	for {
		dec := topo.route(r, 15, 0)
		if dec.ejection {
			break
		}
		if dec.outPort == gridN && x != 3 {
			sawNorthBeforeDoneEast = true
		}
		if dec.outPort == gridE {
			x++
		}
		r = topo.neighbor[r][dec.outPort].router
		hops++
	}
	if hops != 6 {
		t.Errorf("mesh (0,0)->(3,3) took %d hops, want 6", hops)
	}
	if sawNorthBeforeDoneEast {
		t.Error("XY routing turned north before finishing X dimension")
	}
}

func simConfig(topo *Topology, rate float64, seed int64) Config {
	return Config{
		Topology:      topo,
		Router:        RouterConfig{VCs: 2, BufDepth: 4, PipelineLatency: 2},
		InjectionRate: rate,
		PacketFlits:   4,
		WarmupCycles:  300,
		MeasureCycles: 600,
		DrainCycles:   600,
		Seed:          seed,
	}
}

func TestRunValidation(t *testing.T) {
	topo, _ := Build(TopoMesh, 16)
	bad := []Config{
		{},
		{Topology: topo, Router: RouterConfig{VCs: 2, BufDepth: 0}, InjectionRate: 0.1},
		{Topology: topo, Router: RouterConfig{VCs: 2, BufDepth: 4}, InjectionRate: 0},
		{Topology: topo, Router: RouterConfig{VCs: 2, BufDepth: 4}, InjectionRate: 2},
		{Topology: topo, Router: RouterConfig{VCs: 2, BufDepth: 4}, InjectionRate: 0.1, Traffic: "zipf"},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	// Torus with 1 VC must be rejected (deadlock).
	torus, _ := Build(TopoTorus, 16)
	cfg := simConfig(torus, 0.1, 1)
	cfg.Router.VCs = 1
	if _, err := Run(cfg); err == nil {
		t.Error("torus with 1 VC accepted")
	}
}

func TestLowLoadDeliversEverything(t *testing.T) {
	for _, kind := range SimTopologies {
		topo, err := Build(kind, 16)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(simConfig(topo, 0.05, 7))
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if res.Injected == 0 {
			t.Fatalf("%s: nothing injected", kind)
		}
		// With a long drain at 5% load, nearly everything must arrive.
		if float64(res.Delivered) < 0.95*float64(res.Injected) {
			t.Errorf("%s: delivered %d of %d injected at low load", kind, res.Delivered, res.Injected)
		}
		if res.PacketsMeasured == 0 || res.AvgLatency <= 0 {
			t.Errorf("%s: no latency samples (%d measured, %.1f avg)", kind, res.PacketsMeasured, res.AvgLatency)
		}
	}
}

func TestLowLoadThroughputMatchesOffered(t *testing.T) {
	topo, _ := Build(TopoMesh, 16)
	res, err := Run(simConfig(topo, 0.1, 3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput < 0.07 || res.Throughput > 0.13 {
		t.Errorf("accepted throughput %.3f at offered 0.1", res.Throughput)
	}
}

func TestZeroLoadLatencyNearMinimal(t *testing.T) {
	topo, _ := Build(TopoMesh, 16)
	cfg := simConfig(topo, 0.02, 5)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 4x4 mesh uniform: average hop count ~ 2.7 router-to-router hops + 1
	// ejection; pipeline 2/hop plus serialization (4 flits). Minimal
	// latency is roughly 2*3 + 4 = 10; allow generous headroom but reject
	// pathological queueing.
	if res.AvgLatency < 6 || res.AvgLatency > 30 {
		t.Errorf("zero-load latency %.1f outside plausible [6,30]", res.AvgLatency)
	}
}

func TestSaturationLatencyGrows(t *testing.T) {
	topo, _ := Build(TopoRing, 16)
	low, err := Run(simConfig(topo, 0.05, 9))
	if err != nil {
		t.Fatal(err)
	}
	high, err := Run(simConfig(topo, 0.9, 9))
	if err != nil {
		t.Fatal(err)
	}
	if high.AvgLatency < 2*low.AvgLatency {
		t.Errorf("saturated latency %.1f not >> low-load %.1f", high.AvgLatency, low.AvgLatency)
	}
	if high.Throughput >= 0.9 {
		t.Errorf("ring accepted %.2f flits/node/cycle at saturation - bisection-impossible", high.Throughput)
	}
}

func TestMeshOutperformsRing(t *testing.T) {
	ring, _ := Build(TopoRing, 16)
	mesh, _ := Build(TopoMesh, 16)
	ringRes, err := Run(simConfig(ring, 0.6, 11))
	if err != nil {
		t.Fatal(err)
	}
	meshRes, err := Run(simConfig(mesh, 0.6, 11))
	if err != nil {
		t.Fatal(err)
	}
	if meshRes.Throughput <= ringRes.Throughput {
		t.Errorf("mesh throughput %.3f <= ring %.3f under heavy uniform load",
			meshRes.Throughput, ringRes.Throughput)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	topo, _ := Build(TopoTorus, 16)
	a, err := Run(simConfig(topo, 0.3, 21))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Run(simConfig(topo, 0.3, 21))
	if a != b {
		t.Errorf("same seed produced different results: %+v vs %+v", a, b)
	}
	c, _ := Run(simConfig(topo, 0.3, 22))
	if a == c {
		t.Error("different seeds produced identical results")
	}
}

func TestTrafficPatterns(t *testing.T) {
	topo, _ := Build(TopoMesh, 16)
	for _, pattern := range []string{TrafficUniform, TrafficBitComplement, TrafficHotspot} {
		cfg := simConfig(topo, 0.1, 13)
		cfg.Traffic = pattern
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", pattern, err)
		}
		if res.Delivered == 0 {
			t.Errorf("%s: nothing delivered", pattern)
		}
	}
	// Hotspot congestion hurts: at the same load, hotspot latency exceeds
	// uniform latency.
	uni, _ := Run(simConfig(topo, 0.25, 15))
	hot := simConfig(topo, 0.25, 15)
	hot.Traffic = TrafficHotspot
	hotRes, err := Run(hot)
	if err != nil {
		t.Fatal(err)
	}
	if hotRes.AvgLatency <= uni.AvgLatency {
		t.Errorf("hotspot latency %.1f <= uniform %.1f", hotRes.AvgLatency, uni.AvgLatency)
	}
}

// Property: for random seeds and moderate loads, flits are conserved -
// delivered never exceeds injected, and measured packets never exceed
// delivered.
func TestQuickConservation(t *testing.T) {
	topo, _ := Build(TopoConcRing, 16)
	f := func(seed int64, rateRaw uint8) bool {
		rate := 0.02 + float64(rateRaw%40)/100
		cfg := simConfig(topo, rate, seed)
		cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 100, 200, 200
		res, err := Run(cfg)
		if err != nil {
			return false
		}
		return res.Delivered <= res.Injected && res.PacketsMeasured <= res.Delivered
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestAllTopologies64Simulate(t *testing.T) {
	if testing.Short() {
		t.Skip("64-endpoint sweep is slow")
	}
	for _, kind := range SimTopologies {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			topo, err := Build(kind, 64)
			if err != nil {
				t.Fatal(err)
			}
			// 4% load keeps even the 64-endpoint rings (bisection of only
			// 4 channels) well below saturation.
			cfg := simConfig(topo, 0.04, 17)
			cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 200, 400, 600
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Delivered == 0 {
				t.Fatal("nothing delivered")
			}
			if float64(res.Delivered) < 0.9*float64(res.Injected) {
				t.Errorf("delivered %d of %d at 4%% load", res.Delivered, res.Injected)
			}
		})
	}
}

func ExampleRun() {
	topo, _ := Build(TopoMesh, 16)
	res, _ := Run(Config{
		Topology:      topo,
		Router:        RouterConfig{VCs: 2, BufDepth: 4, PipelineLatency: 2},
		InjectionRate: 0.1,
		Seed:          1,
	})
	fmt.Println(res.Delivered > 0)
	// Output: true
}

func TestPermutationTrafficPatterns(t *testing.T) {
	topo, _ := Build(TopoMesh, 64)
	for _, pattern := range []string{TrafficTranspose, TrafficNeighbor, TrafficShuffle} {
		cfg := simConfig(topo, 0.05, 19)
		cfg.Traffic = pattern
		cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 200, 300, 400
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", pattern, err)
		}
		if res.Delivered == 0 {
			t.Errorf("%s: nothing delivered", pattern)
		}
		if float64(res.Delivered) < 0.9*float64(res.Injected) {
			t.Errorf("%s: delivered %d of %d at low load", pattern, res.Delivered, res.Injected)
		}
	}
}

func TestNeighborTrafficIsRingFriendly(t *testing.T) {
	// Nearest-neighbor traffic should let even a ring sustain far more load
	// than uniform traffic (no bisection pressure at all).
	topo, _ := Build(TopoRing, 16)
	mk := func(pattern string) Result {
		cfg := simConfig(topo, 0.5, 23)
		cfg.Traffic = pattern
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	uniform := mk(TrafficUniform)
	neighbor := mk(TrafficNeighbor)
	if neighbor.Throughput <= uniform.Throughput {
		t.Errorf("neighbor throughput %.3f should beat uniform %.3f on a ring",
			neighbor.Throughput, uniform.Throughput)
	}
}

func TestTransposeSelfTrafficExcluded(t *testing.T) {
	// Diagonal endpoints map to themselves under transpose; the generator
	// must redirect those rather than self-send (which would never eject
	// through the network and distort stats). Just check it runs and
	// conserves flits.
	topo, _ := Build(TopoMesh, 16)
	cfg := simConfig(topo, 0.1, 29)
	cfg.Traffic = TrafficTranspose
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered > res.Injected {
		t.Error("delivered more packets than injected")
	}
}

func TestOneFlitPerInputPortPerCycle(t *testing.T) {
	// The crossbar constraint must hold: with a single input port feeding
	// two output directions (router 0 of a ring has one upstream), total
	// accepted throughput cannot exceed 1 flit per input per cycle. Use a
	// 16-ring at maximum load and check global conservation instead of
	// instrumenting internals: accepted <= 1.0 per endpoint trivially, and
	// the run must stay deadlock-free.
	topo, _ := Build(TopoRing, 16)
	cfg := simConfig(topo, 1.0, 37)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput > 1.0 {
		t.Errorf("throughput %.3f exceeds physical input-port limit", res.Throughput)
	}
	if res.Delivered == 0 {
		t.Error("network deadlocked at saturation")
	}
}
