package netsim

import (
	"fmt"
	"math/rand"
)

// RouterConfig carries the microarchitectural parameters the simulator
// honors (the structural subset of the noc package's router space).
type RouterConfig struct {
	// VCs is the number of virtual channels per input port (must be at
	// least the topology's VCClasses).
	VCs int
	// BufDepth is the flit buffer depth per VC.
	BufDepth int
	// PipelineLatency is the cycles a flit takes through one router+link
	// hop (at least 1).
	PipelineLatency int
}

// Traffic patterns.
const (
	TrafficUniform       = "uniform"
	TrafficBitComplement = "bit_complement"
	TrafficHotspot       = "hotspot"
	// TrafficTranspose swaps the high and low halves of the endpoint index
	// (matrix-transpose communication; adversarial for dimension-ordered
	// routing).
	TrafficTranspose = "transpose"
	// TrafficNeighbor sends to the next endpoint (best case for rings).
	TrafficNeighbor = "neighbor"
	// TrafficShuffle rotates the endpoint index left by one bit (the
	// perfect-shuffle permutation of sorting networks).
	TrafficShuffle = "shuffle"
)

// Config describes one simulation run.
type Config struct {
	Topology *Topology
	Router   RouterConfig
	// Traffic is the synthetic pattern (default uniform random).
	Traffic string
	// InjectionRate is offered load in flits per endpoint per cycle.
	InjectionRate float64
	// PacketFlits is the packet length (default 4).
	PacketFlits int
	// WarmupCycles, MeasureCycles, DrainCycles control the measurement
	// methodology (defaults 1000/2000/2000).
	WarmupCycles, MeasureCycles, DrainCycles int
	Seed                                     int64
}

func (c Config) withDefaults() Config {
	if c.Traffic == "" {
		c.Traffic = TrafficUniform
	}
	if c.PacketFlits == 0 {
		c.PacketFlits = 4
	}
	if c.WarmupCycles == 0 {
		c.WarmupCycles = 1000
	}
	if c.MeasureCycles == 0 {
		c.MeasureCycles = 2000
	}
	if c.DrainCycles == 0 {
		c.DrainCycles = 2000
	}
	if c.Router.PipelineLatency == 0 {
		c.Router.PipelineLatency = 2
	}
	return c
}

func (c Config) validate() error {
	if c.Topology == nil {
		return fmt.Errorf("netsim: nil topology")
	}
	if c.Router.VCs < c.Topology.VCClasses {
		return fmt.Errorf("netsim: %s needs >= %d VCs for deadlock freedom, have %d",
			c.Topology.Kind, c.Topology.VCClasses, c.Router.VCs)
	}
	if c.Router.VCs < 1 || c.Router.VCs > 64 {
		return fmt.Errorf("netsim: VC count %d out of range", c.Router.VCs)
	}
	if c.Router.BufDepth < 1 {
		return fmt.Errorf("netsim: buffer depth %d < 1", c.Router.BufDepth)
	}
	if c.InjectionRate <= 0 || c.InjectionRate > 1 {
		return fmt.Errorf("netsim: injection rate %v outside (0,1]", c.InjectionRate)
	}
	if c.PacketFlits < 1 {
		return fmt.Errorf("netsim: packet length %d < 1", c.PacketFlits)
	}
	switch c.Traffic {
	case TrafficUniform, TrafficBitComplement, TrafficHotspot,
		TrafficTranspose, TrafficNeighbor, TrafficShuffle:
	default:
		return fmt.Errorf("netsim: unknown traffic pattern %q", c.Traffic)
	}
	return nil
}

// Result reports a simulation's measured performance.
type Result struct {
	// AvgLatency is the mean packet latency in cycles (generation to tail
	// ejection) over packets generated in the measurement window.
	AvgLatency float64
	// Throughput is accepted traffic in flits per endpoint per cycle over
	// the measurement window.
	Throughput float64
	// PacketsMeasured counts latency samples; Delivered/Injected count all
	// packets over the whole run.
	PacketsMeasured, Delivered, Injected int
}

// flit is one flow-control unit in flight.
type flit struct {
	packet   int
	dst      int
	head     bool
	tail     bool
	class    int // current VC class (dateline updates it)
	born     int // generation cycle
	measured bool
}

// vcState is the per-input-VC bookkeeping of a wormhole router.
type vcState struct {
	q       []flit
	owner   int  // packet currently allocated to this VC (-1 = free)
	routed  bool // head routing + VC allocation done for current packet
	outPort int
	outVC   int
	eject   bool
}

type inFlight struct {
	f      flit
	arrive int
	router int
	port   int
	vc     int
}

// Run executes one simulation and returns measured performance.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	t := cfg.Topology
	V := cfg.Router.VCs
	P := t.Ports()
	classSize := V / t.VCClasses

	r := rand.New(rand.NewSource(cfg.Seed))

	// State: input VC queues per (router, port, vc).
	idx := func(router, port, vc int) int { return (router*P+port)*V + vc }
	vcs := make([]vcState, t.Routers*P*V)
	for i := range vcs {
		vcs[i].owner = -1
	}
	// Credits for each (router, netPort, vc): free downstream buffer slots.
	credits := make([]int, t.Routers*t.NetPorts*V)
	for i := range credits {
		credits[i] = cfg.Router.BufDepth
	}
	cidx := func(router, netPort, vc int) int { return (router*t.NetPorts+netPort)*V + vc }

	// Link pipelines: flits in flight, delivered at their arrival cycle.
	var wire []inFlight

	// Output arbiter round-robin pointers per (router, output).
	rrPtr := make([]int, t.Routers*(t.NetPorts+t.Conc))

	// Source queues: packets waiting to enter the network.
	srcQ := make([][]flit, t.Endpoints)

	totalCycles := cfg.WarmupCycles + cfg.MeasureCycles + cfg.DrainCycles
	measStart, measEnd := cfg.WarmupCycles, cfg.WarmupCycles+cfg.MeasureCycles

	res := Result{}
	var latencySum int64
	flitsDeliveredInWindow := 0
	nextPacket := 0
	pktRate := cfg.InjectionRate / float64(cfg.PacketFlits)

	lgN := bitsLen(t.Endpoints - 1)
	dest := func(src int) int {
		switch cfg.Traffic {
		case TrafficBitComplement:
			return (^src) & (t.Endpoints - 1)
		case TrafficTranspose:
			half := lgN / 2
			lo := src & (1<<half - 1)
			hi := src >> half
			d := lo<<(lgN-half) | hi
			if d != src {
				return d
			}
		case TrafficNeighbor:
			return (src + 1) % t.Endpoints
		case TrafficShuffle:
			d := (src<<1 | src>>(lgN-1)) & (t.Endpoints - 1)
			if d != src {
				return d
			}
		case TrafficHotspot:
			if r.Float64() < 0.1 && src != 0 {
				return 0
			}
		}
		for {
			d := r.Intn(t.Endpoints)
			if d != src {
				return d
			}
		}
	}

	for cycle := 0; cycle < totalCycles; cycle++ {
		// 1. Deliver in-flight flits whose time has come.
		keep := wire[:0]
		for _, w := range wire {
			if w.arrive > cycle {
				keep = append(keep, w)
				continue
			}
			s := &vcs[idx(w.router, w.port, w.vc)]
			s.q = append(s.q, w.f)
		}
		wire = keep

		// 2. Per router: ejection, then switch allocation per output port.
		// The router model has full input speedup (any number of VCs of an
		// input port may traverse per cycle) - the standard simplification
		// of fast NoC simulators; allocator cost differences are captured
		// by the synthesis models instead.
		nCand := P * V
		for rt := 0; rt < t.Routers; rt++ {
			// Ejection: each local output port drains one flit per cycle.
			for lp := 0; lp < t.Conc; lp++ {
				won := -1
				base := rrPtr[rt*(t.NetPorts+t.Conc)+t.NetPorts+lp]
				for k := 0; k < nCand; k++ {
					cand := (base + k) % nCand
					inP, inV := cand/V, cand%V
					s := &vcs[idx(rt, inP, inV)]
					if len(s.q) == 0 {
						continue
					}
					if !ensureRouted(t, rt, s, &vcs, idx, credits, cidx, V, classSize) {
						continue
					}
					if !s.eject {
						continue
					}
					// Destination endpoint must map to this local port.
					_, localPort := t.endpointRouter(s.q[0].dst)
					if localPort != lp {
						continue
					}
					won = cand
					break
				}
				if won < 0 {
					continue
				}
				rrPtr[rt*(t.NetPorts+t.Conc)+t.NetPorts+lp] = (won + 1) % nCand
				inP, inV := won/V, won%V
				s := &vcs[idx(rt, inP, inV)]
				f := s.q[0]
				s.q = s.q[1:]
				creditUpstream(t, rt, inP, inV, credits, cidx)
				if f.tail {
					s.owner = -1
					s.routed = false
					res.Delivered++
					if f.measured {
						latencySum += int64(cycle - f.born)
						res.PacketsMeasured++
					}
				}
				if cycle >= measStart && cycle < measEnd {
					flitsDeliveredInWindow++
				}
			}

			// Network outputs: one flit per output port per cycle.
			for outP := 0; outP < t.NetPorts; outP++ {
				if t.neighbor[rt][outP].router < 0 {
					continue // unconnected (mesh edge)
				}
				won := -1
				base := rrPtr[rt*(t.NetPorts+t.Conc)+outP]
				for k := 0; k < nCand; k++ {
					cand := (base + k) % nCand
					inP, inV := cand/V, cand%V
					s := &vcs[idx(rt, inP, inV)]
					if len(s.q) == 0 {
						continue
					}
					if !ensureRouted(t, rt, s, &vcs, idx, credits, cidx, V, classSize) {
						continue
					}
					if s.eject || s.outPort != outP {
						continue
					}
					if credits[cidx(rt, outP, s.outVC)] <= 0 {
						continue
					}
					won = cand
					break
				}
				if won < 0 {
					continue
				}
				rrPtr[rt*(t.NetPorts+t.Conc)+outP] = (won + 1) % nCand
				inP, inV := won/V, won%V
				s := &vcs[idx(rt, inP, inV)]
				f := s.q[0]
				s.q = s.q[1:]
				creditUpstream(t, rt, inP, inV, credits, cidx)
				credits[cidx(rt, outP, s.outVC)]--
				nb := t.neighbor[rt][outP]
				wire = append(wire, inFlight{
					f:      f,
					arrive: cycle + cfg.Router.PipelineLatency,
					router: nb.router,
					port:   t.Conc + nb.port,
					vc:     s.outVC,
				})
				if f.tail {
					s.owner = -1
					s.routed = false
				}
			}
		}

		// 3. Injection: generate packets; move source-queue flits into the
		// local input port when space allows.
		if cycle < measEnd { // stop offering load during drain
			for ep := 0; ep < t.Endpoints; ep++ {
				if r.Float64() < pktRate {
					d := dest(ep)
					measured := cycle >= measStart && cycle < measEnd
					for i := 0; i < cfg.PacketFlits; i++ {
						srcQ[ep] = append(srcQ[ep], flit{
							packet:   nextPacket,
							dst:      d,
							head:     i == 0,
							tail:     i == cfg.PacketFlits-1,
							born:     cycle,
							measured: measured,
						})
					}
					nextPacket++
					res.Injected++
				}
			}
		}
		for ep := 0; ep < t.Endpoints; ep++ {
			if len(srcQ[ep]) == 0 {
				continue
			}
			rt, lp := t.endpointRouter(ep)
			// The local input port uses VC (lp % classSize) of class 0; the
			// buffer bound applies like any other input.
			s := &vcs[idx(rt, lp, lp%classSize)]
			for len(srcQ[ep]) > 0 && len(s.q) < cfg.Router.BufDepth {
				f := srcQ[ep][0]
				if f.head && s.owner >= 0 && s.owner != f.packet {
					break // previous packet still draining through this VC
				}
				if f.head {
					s.owner = f.packet
				}
				s.q = append(s.q, f)
				srcQ[ep] = srcQ[ep][1:]
			}
		}
	}

	if res.PacketsMeasured > 0 {
		res.AvgLatency = float64(latencySum) / float64(res.PacketsMeasured)
	}
	res.Throughput = float64(flitsDeliveredInWindow) / float64(t.Endpoints) / float64(cfg.MeasureCycles)
	return res, nil
}

// ensureRouted performs route computation and VC allocation for the packet
// at the head of s, returning whether the head flit is ready to compete for
// the switch.
func ensureRouted(t *Topology, rt int, s *vcState, vcs *[]vcState,
	idx func(int, int, int) int, credits []int, cidx func(int, int, int) int,
	V, classSize int) bool {
	if s.routed {
		return true
	}
	f := s.q[0]
	if !f.head {
		// Body flit of a packet whose state was cleared - cannot happen in
		// a correct wormhole flow; treat as not ready.
		return false
	}
	dec := t.route(rt, f.dst, f.class)
	if dec.ejection {
		s.eject = true
		s.routed = true
		return true
	}
	class := f.class
	if dec.vcClass >= 0 {
		class = dec.vcClass
	}
	// VC allocation: find a free downstream input VC in the class range.
	nb := t.neighbor[rt][dec.outPort]
	lo := class * classSize
	hi := lo + classSize
	if hi > V {
		hi = V
	}
	for vc := lo; vc < hi; vc++ {
		down := &(*vcs)[idx(nb.router, t.Conc+nb.port, vc)]
		if down.owner == -1 && credits[cidx(rt, dec.outPort, vc)] > 0 {
			down.owner = f.packet
			s.eject = false
			s.routed = true
			s.outPort = dec.outPort
			s.outVC = vc
			// Propagate the (possibly updated) class to the packet's flits.
			for i := range s.q {
				if s.q[i].packet == f.packet {
					s.q[i].class = class
				}
			}
			return true
		}
	}
	return false // no VC available this cycle
}

// creditUpstream returns one buffer credit to the sender feeding (rt, inP,
// inV). Local injection ports have no upstream credits.
func creditUpstream(t *Topology, rt, inP, inV int, credits []int, cidx func(int, int, int) int) {
	if inP < t.Conc {
		return // local port: source queue, no credit loop
	}
	netP := inP - t.Conc
	up := t.neighbor[rt][netP]
	if up.router < 0 {
		return
	}
	credits[cidx(up.router, up.port, inV)]++
}

// bitsLen returns the number of bits needed to represent v.
func bitsLen(v int) int {
	n := 0
	for v > 0 {
		n++
		v >>= 1
	}
	return n
}
