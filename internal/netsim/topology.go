// Package netsim is a cycle-based network-on-chip simulator used to
// characterize NoC design points by measured performance (packet latency
// and accepted throughput) rather than analytical bounds. It models
// credit-based wormhole routers with virtual channels, deterministic
// deadlock-free routing per topology, and synthetic traffic patterns -
// the "simulation tools" half of the paper's characterization flow (the
// CAD half lives in internal/synth).
package netsim

import (
	"fmt"
)

// Topology kinds supported by the simulator (the bidirectional families of
// the paper's Figure 2; the unidirectional butterfly is not simulated).
const (
	TopoRing           = "ring"
	TopoDoubleRing     = "double_ring"
	TopoConcRing       = "conc_ring"
	TopoConcDoubleRing = "conc_double_ring"
	TopoMesh           = "mesh"
	TopoTorus          = "torus"
	TopoFatTree        = "fat_tree"
)

// SimTopologies lists the simulatable topology kinds.
var SimTopologies = []string{
	TopoRing, TopoDoubleRing, TopoConcRing, TopoConcDoubleRing,
	TopoMesh, TopoTorus, TopoFatTree,
}

// port addresses a router input/output: local ejection/injection ports come
// first (one per attached endpoint), then network ports.
type port struct {
	router int
	port   int
}

// hopDecision is a routing step: the output port to take and, when the hop
// crosses a dateline, a forced switch to the next VC class.
type hopDecision struct {
	outPort  int
	vcClass  int // VC class to use from here on (-1 = keep current)
	ejection bool
}

// Topology is an instantiated network graph with deterministic,
// deadlock-free routing.
type Topology struct {
	Kind      string
	Endpoints int
	Routers   int
	// Conc is the number of endpoints per router.
	Conc int
	// NetPorts is the number of network (non-local) ports per router.
	NetPorts int
	// VCClasses is the number of VC classes the routing function needs
	// (2 for dateline-protected rings/tori, 1 otherwise). The simulated
	// router must have at least this many VCs.
	VCClasses int

	// neighbor[r][p] is the (router, port) reached by leaving router r via
	// network port p (p counts from 0 over network ports only).
	neighbor [][]port
	// route decides the next hop at router r for a packet to endpoint dst
	// currently in VC class cls.
	route func(r, dst, cls int) hopDecision

	// extra per-kind state
	side   int   // mesh/torus side
	levels int   // fat tree levels
	parent []int // fat-tree helper
}

// endpointRouter returns the router an endpoint attaches to and its local
// port index.
func (t *Topology) endpointRouter(ep int) (router, localPort int) {
	return ep / t.Conc, ep % t.Conc
}

// EndpointRouter returns the router an endpoint attaches to and its local
// port index (for netlist generation and analysis).
func (t *Topology) EndpointRouter(ep int) (router, localPort int) {
	return t.endpointRouter(ep)
}

// NeighborOf returns the (router, networkPort) reached by leaving router r
// via network port p, or connected=false for a dangling port (mesh edges).
func (t *Topology) NeighborOf(r, p int) (router, netPort int, connected bool) {
	nb := t.neighbor[r][p]
	if nb.router < 0 {
		return 0, 0, false
	}
	return nb.router, nb.port, true
}

// Ports returns the router radix (local + network ports).
func (t *Topology) Ports() int { return t.Conc + t.NetPorts }

// Build constructs a topology of the given kind for n endpoints. n must be
// a positive power of two >= 16 (and a perfect square for mesh/torus).
func Build(kind string, n int) (*Topology, error) {
	if n < 16 || n&(n-1) != 0 {
		return nil, fmt.Errorf("netsim: endpoint count %d must be a power of two >= 16", n)
	}
	switch kind {
	case TopoRing:
		return buildRing(n, 1, 1), nil
	case TopoDoubleRing:
		return buildRing(n, 1, 2), nil
	case TopoConcRing:
		return buildRing(n, 4, 1), nil
	case TopoConcDoubleRing:
		return buildRing(n, 4, 2), nil
	case TopoMesh:
		return buildGrid(n, false)
	case TopoTorus:
		return buildGrid(n, true)
	case TopoFatTree:
		return buildFatTree(n)
	}
	return nil, fmt.Errorf("netsim: unknown or unsimulatable topology %q", kind)
}

// buildRing constructs a (possibly concentrated, possibly doubled)
// bidirectional ring. Network ports per lane: 0=counter-clockwise (toward
// lower indices), 1=clockwise. Dateline: packets crossing the wrap edge
// switch to VC class 1, so rings need 2 VC classes.
func buildRing(n, conc, lanes int) *Topology {
	r := n / conc
	t := &Topology{
		Kind:      kindOfRing(conc, lanes),
		Endpoints: n,
		Routers:   r,
		Conc:      conc,
		NetPorts:  2 * lanes,
		VCClasses: 2,
	}
	t.neighbor = make([][]port, r)
	for i := 0; i < r; i++ {
		t.neighbor[i] = make([]port, t.NetPorts)
		for lane := 0; lane < lanes; lane++ {
			ccw, cw := 2*lane, 2*lane+1
			t.neighbor[i][ccw] = port{router: (i - 1 + r) % r, port: cw}
			t.neighbor[i][cw] = port{router: (i + 1) % r, port: ccw}
		}
	}
	t.route = func(rt, dst, cls int) hopDecision {
		dr, _ := t.endpointRouter(dst)
		if dr == rt {
			return hopDecision{ejection: true}
		}
		// Shortest direction; ties go clockwise. Lane chosen by
		// destination parity to spread load across doubled rings.
		fwd := (dr - rt + r) % r
		lane := 0
		if lanes > 1 {
			lane = dst % lanes
		}
		var out int
		var crossesWrap bool
		if fwd <= r-fwd {
			out = 2*lane + 1 // clockwise
			crossesWrap = rt+1 == r
		} else {
			out = 2 * lane // counter-clockwise
			crossesWrap = rt == 0
		}
		vc := -1
		if crossesWrap {
			vc = 1 // dateline: switch class to break the cycle
		}
		return hopDecision{outPort: out, vcClass: vc}
	}
	return t
}

func kindOfRing(conc, lanes int) string {
	switch {
	case conc > 1 && lanes > 1:
		return TopoConcDoubleRing
	case conc > 1:
		return TopoConcRing
	case lanes > 1:
		return TopoDoubleRing
	}
	return TopoRing
}

// Grid port layout: 0=west, 1=east, 2=south, 3=north (after local ports).
const (
	gridW = 0
	gridE = 1
	gridS = 2
	gridN = 3
)

// buildGrid constructs an XY-routed mesh or torus. XY dimension-ordered
// routing is deadlock-free on the mesh; the torus additionally needs a
// dateline class per dimension crossing, so it requires 2 VC classes.
func buildGrid(n int, wrap bool) (*Topology, error) {
	side := 1
	for side*side < n {
		side++
	}
	if side*side != n {
		return nil, fmt.Errorf("netsim: mesh/torus needs a square endpoint count, got %d", n)
	}
	kind := TopoMesh
	classes := 1
	if wrap {
		kind = TopoTorus
		classes = 2
	}
	t := &Topology{
		Kind:      kind,
		Endpoints: n,
		Routers:   n,
		Conc:      1,
		NetPorts:  4,
		VCClasses: classes,
		side:      side,
	}
	idx := func(x, y int) int { return y*side + x }
	t.neighbor = make([][]port, n)
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			nb := make([]port, 4)
			none := port{router: -1}
			nb[gridW], nb[gridE], nb[gridS], nb[gridN] = none, none, none, none
			if x > 0 || wrap {
				nb[gridW] = port{router: idx((x-1+side)%side, y), port: gridE}
			}
			if x < side-1 || wrap {
				nb[gridE] = port{router: idx((x+1)%side, y), port: gridW}
			}
			if y > 0 || wrap {
				nb[gridS] = port{router: idx(x, (y-1+side)%side), port: gridN}
			}
			if y < side-1 || wrap {
				nb[gridN] = port{router: idx(x, (y+1)%side), port: gridS}
			}
			t.neighbor[idx(x, y)] = nb
		}
	}
	t.route = func(rt, dst, cls int) hopDecision {
		dr, _ := t.endpointRouter(dst)
		if dr == rt {
			return hopDecision{ejection: true}
		}
		x, y := rt%side, rt/side
		dx, dy := dr%side, dr/side
		// X first, then Y (dimension order).
		if x != dx {
			out, crosses := gridStep(x, dx, side, wrap, gridW, gridE)
			vc := -1
			if crosses {
				vc = 1
			}
			return hopDecision{outPort: out, vcClass: vc}
		}
		out, crosses := gridStep(y, dy, side, wrap, gridS, gridN)
		vc := -1
		if crosses {
			vc = 1
		}
		return hopDecision{outPort: out, vcClass: vc}
	}
	return t, nil
}

// gridStep picks the direction along one dimension and reports whether the
// hop crosses the wrap edge (torus dateline).
func gridStep(cur, dst, side int, wrap bool, negPort, posPort int) (out int, crossesWrap bool) {
	if !wrap {
		if dst > cur {
			return posPort, false
		}
		return negPort, false
	}
	fwd := (dst - cur + side) % side
	if fwd <= side-fwd {
		return posPort, cur == side-1
	}
	return negPort, cur == 0
}

// buildFatTree constructs a 4-ary n-tree (the fat-tree variant used by
// CONNECT-style generators): levels = log4(n) switch levels of n/4 switches
// each, level-0 switches hosting 4 endpoints. Switch positions are labeled
// in base 4; a level-l switch and a level-(l+1) switch are connected iff
// their labels agree everywhere except digit l, the child using up port
// (parent's digit l) and the parent using down port (child's digit l).
// Up*/down routing on such trees is deadlock-free with one VC class.
func buildFatTree(n int) (*Topology, error) {
	levels := 0
	for m := n; m > 1; m /= 4 {
		if m%4 != 0 {
			return nil, fmt.Errorf("netsim: fat tree needs a power-of-4 endpoint count, got %d", n)
		}
		levels++
	}
	perLevel := n / 4
	routers := levels * perLevel
	t := &Topology{
		Kind:      TopoFatTree,
		Endpoints: n,
		Routers:   routers,
		Conc:      4, // level-0 switches host 4 endpoints each
		NetPorts:  8, // ports 0-3 down, 4-7 up
		VCClasses: 1,
		levels:    levels,
	}
	id := func(level, pos int) int { return level*perLevel + pos }
	digit := func(x, i int) int { return (x >> uint(2*i)) & 3 }
	setDigit := func(x, i, d int) int { return x&^(3<<uint(2*i)) | d<<uint(2*i) }

	t.neighbor = make([][]port, routers)
	for i := range t.neighbor {
		nb := make([]port, t.NetPorts)
		for p := range nb {
			nb[p] = port{router: -1}
		}
		t.neighbor[i] = nb
	}
	for l := 0; l < levels-1; l++ {
		for ppos := 0; ppos < perLevel; ppos++ { // level l+1 parent
			u := digit(ppos, l) // child's up-port index
			for d := 0; d < 4; d++ {
				child := setDigit(ppos, l, d) // level l child
				t.neighbor[id(l+1, ppos)][d] = port{router: id(l, child), port: 4 + u}
				t.neighbor[id(l, child)][4+u] = port{router: id(l+1, ppos), port: d}
			}
		}
	}
	pow4 := func(e int) int { return 1 << uint(2*e) }
	t.route = func(rt, dst, cls int) hopDecision {
		level := rt / perLevel
		pos := rt % perLevel
		dleaf := dst / 4 // destination level-0 switch
		contained := dleaf/pow4(level) == pos/pow4(level)
		switch {
		case contained && level == 0:
			return hopDecision{ejection: true}
		case contained:
			// Descend toward the child matching dst's next digit.
			return hopDecision{outPort: digit(dleaf, level-1)}
		default:
			// Ascend: any up port reaches a valid ancestor (the descent
			// phase fixes the position digits), so spread flows across the
			// redundant roots by a hash of position and destination to
			// avoid in-tree hotspots.
			return hopDecision{outPort: 4 + (pos*7+dleaf*13+dst)&3}
		}
	}
	return t, nil
}
