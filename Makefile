# Nautilus reproduction - build/test/bench entry points.
#
#   make check   tier-1 gate: build + vet + race-enabled tests
#   make lint    static gate: go vet + gofmt formatting check
#   make test    plain test run (fastest)
#   make cover   coverage run with a total-statement-coverage floor
#   make smoke   reduced-scale benchmark sweep -> BENCH_results.json
#   make bench   Go micro/macro benchmarks with allocation counts
#   make bench-smoke  dispatch regression gate vs committed BENCH_results.json
#   make apicheck     forbid new callers of the deprecated core.Run* wrappers
#   make tables  regenerate every paper table (RESULTS.md to stdout)

GO ?= go

# Total statement coverage must not drop below this floor (the tree sits
# around 80%; the gap is headroom for new code, not license to delete tests).
COVER_FLOOR ?= 75

.PHONY: all check lint fmt build vet test race cover smoke bench bench-smoke apicheck tables clean

all: check

check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fails (listing the offending files) when anything is not gofmt-clean.
lint: vet
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

fmt:
	gofmt -w .

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -coverprofile=coverage.out ./...
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	echo "total statement coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t + 0 < f + 0) ? 1 : 0 }' || \
	{ echo "coverage fell below the $(COVER_FLOOR)% floor"; exit 1; }

# Reduced-scale end-to-end benchmark of representative figures; writes
# BENCH_results.json (ns/op, allocs/op, cores) for commit-to-commit tracking.
smoke:
	$(GO) run ./cmd/bench -figs fig1,fig3,fig4,fig6 -runs 2 -gens 10 -out BENCH_results.json

bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

# Dispatch regression gate: re-measure the batched-vs-single evaluation
# dispatch comparison and fail if the speedup ratio regressed more than 10%
# against the committed BENCH_results.json. The gate compares the speedup
# RATIO, not absolute ns/eval, so it holds across machines of different
# speeds; the measurement itself pins GOMAXPROCS=1 for the same reason.
bench-smoke:
	$(GO) run ./cmd/bench -figs fig1 -runs 1 -gens 5 \
		-dispatch-baseline BENCH_results.json -out /tmp/bench-smoke.json

# API gate: the core.Run / core.RunContext / core.RunBaseline wrappers are
# deprecated in favour of core.Search; no new callers may appear outside
# internal/core (which hosts the wrappers and their compatibility tests).
apicheck:
	@offenders=$$(grep -rnE 'core\.(Run|RunContext|RunBaseline)\(' \
		--include='*.go' . | grep -v '^\./internal/core/' || true); \
	if [ -n "$$offenders" ]; then \
		echo "deprecated core.Run* wrappers called outside internal/core (use core.Search):"; \
		echo "$$offenders"; exit 1; \
	fi

tables:
	$(GO) run ./cmd/experiments

clean:
	$(GO) clean ./...
	rm -f BENCH_results.json coverage.out
