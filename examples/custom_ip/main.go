// custom_ip shows how an IP author integrates Nautilus into a brand-new
// generator: define the parameter space, provide an evaluator, and embed
// hints as part of authoring the IP - the paper's intended workflow, where
// hint calibration happens once during IP development and ships with the
// generator.
//
// The example IP is a small systolic matrix-multiply accelerator generator
// with a toy analytical cost model built from the same synthesis
// primitives the bundled NoC and FFT generators use.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"nautilus/internal/core"
	"nautilus/internal/ga"
	"nautilus/internal/metrics"
	"nautilus/internal/param"
	"nautilus/internal/synth"
)

// Step 1: declare the generator's parameter space.
func mmSpace() *param.Space {
	return param.MustSpace(
		param.Levels("rows", 2, 4, 8, 16, 32),      // PE array rows
		param.Levels("cols", 2, 4, 8, 16, 32),      // PE array columns
		param.Levels("data_width", 8, 16, 24, 32),  // operand width
		param.Choice("dataflow", "ws", "os", "rs"), // weight/output/row stationary
		param.Pow2("buffer_kb", 1, 6),              // on-chip buffer per edge
		param.Flag("double_buffer"),                // overlap load and compute
	)
}

// Step 2: provide the evaluator (in a real generator: synthesis runs).
func mmEvaluate(s *param.Space, pt param.Point) (metrics.Metrics, error) {
	rows, cols := s.Int(pt, "rows"), s.Int(pt, "cols")
	dw := s.Int(pt, "data_width")
	bufKB := s.Int(pt, "buffer_kb")
	if rows*cols > 512 {
		return nil, errors.New("mm: PE array exceeds device budget") // infeasible region
	}
	pes := float64(rows * cols)
	peLUTs := synth.MultiplierLUTs(dw)*0.5 + 2*synth.AdderLUTs(dw)
	bufLUTs := float64(bufKB) * 1024 * 8 / synth.LUTRAMBits
	ctrl := map[string]float64{"ws": 120, "os": 180, "rs": 260}[s.String(pt, "dataflow")]
	luts := pes*peLUTs + bufLUTs + ctrl
	if s.Bool(pt, "double_buffer") {
		luts += bufLUTs // second buffer copy
	}

	dev := synth.Virtex6LX760
	depth := 2 + 0.4*float64(dw)/8
	fmax := dev.Fmax(depth, dev.Congestion(luts, dw))
	// MACs per second; double buffering hides memory stalls.
	util := 0.6
	if s.Bool(pt, "double_buffer") {
		util = 0.95
	}
	gmacs := pes * fmax * util / 1000
	return metrics.Metrics{
		metrics.LUTs:    luts * synth.Noise(s.Key(pt), 0.03),
		metrics.FmaxMHz: fmax,
		"gmacs":         gmacs,
	}, nil
}

// Step 3: embed author hints while creating the IP.
func mmHints(s *param.Space) *core.Library {
	lib := core.NewLibrary(s)
	perf := lib.Metric("gmacs")
	perf.SetImportance("rows", 90, 0.05).SetBias("rows", 0.9)
	perf.SetImportance("cols", 90, 0.05).SetBias("cols", 0.9)
	perf.SetImportance("double_buffer", 60, 0).SetTargetChoice("double_buffer", "on")
	perf.SetImportance("data_width", 40, 0).SetBias("data_width", -0.5)
	// Order the categorical dataflows by expected performance, then bias.
	perf.SetOrder("dataflow", "rs", "os", "ws").SetBias("dataflow", 0.4)

	area := lib.Metric(metrics.LUTs)
	area.SetImportance("rows", 80, 0).SetBias("rows", 0.9)
	area.SetImportance("cols", 80, 0).SetBias("cols", 0.9)
	area.SetImportance("data_width", 70, 0).SetBias("data_width", 0.8)
	area.SetImportance("buffer_kb", 50, 0).SetBias("buffer_kb", 0.7)
	return lib
}

func main() {
	space := mmSpace()
	evaluate := func(pt param.Point) (metrics.Metrics, error) { return mmEvaluate(space, pt) }
	library := mmHints(space)

	// An IP user asks for compute efficiency: GMACs per LUT.
	objective := metrics.MaximizeDerived("gmacs_per_lut", metrics.Ratio("gmacs", metrics.LUTs))
	guidance, err := library.Guidance(metrics.Maximize, map[string]float64{
		"gmacs":      1,
		metrics.LUTs: -1,
	}, 0.85)
	if err != nil {
		log.Fatal(err)
	}

	req := core.SearchRequest{
		Space:     space,
		Objective: objective,
		Evaluate:  evaluate,
		Config:    ga.Config{Seed: 3},
	}
	baseline, err := core.Search(context.Background(), req)
	if err != nil {
		log.Fatal(err)
	}
	guided, err := core.Search(context.Background(), req, core.WithGuidance(guidance))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("custom IP: systolic matrix-multiply generator")
	fmt.Printf("space: %d points (%d parameters)\n", space.Cardinality(), space.Len())
	fmt.Printf("goal: maximize GMACs per LUT\n\n")
	fmt.Printf("baseline GA: %.4f at %s\n  (%d synthesis jobs)\n",
		baseline.BestValue, space.Describe(baseline.BestPoint), baseline.DistinctEvals)
	fmt.Printf("nautilus:    %.4f at %s\n  (%d synthesis jobs)\n",
		guided.BestValue, space.Describe(guided.BestPoint), guided.DistinctEvals)
}
