// noc_frequency reproduces the paper's Figure 4 scenario as an
// application: an IP user wants the fastest possible virtual-channel
// router, and has no expert hints - so the hints are estimated empirically
// from a small sample of synthesized designs (the paper's non-expert path,
// ~80 designs, under 0.3% of the space), then used to guide the search.
package main

import (
	"context"
	"fmt"
	"log"

	"nautilus/internal/core"
	"nautilus/internal/ga"
	"nautilus/internal/hintcal"
	"nautilus/internal/metrics"
	"nautilus/internal/noc"
	"nautilus/internal/param"
)

func main() {
	space := noc.RouterSpace()
	evaluate := func(pt param.Point) (metrics.Metrics, error) {
		return noc.RouterEvaluate(space, pt)
	}
	objective := metrics.MaximizeMetric(metrics.FmaxMHz)

	// Step 1: estimate hints by sweeping each parameter around a few base
	// configurations - a one-time calibration cost.
	library, spent, err := hintcal.Estimate(space, evaluate,
		[]string{metrics.FmaxMHz, metrics.LUTs}, hintcal.Options{Budget: 80, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hint calibration used %d synthesis jobs\n", spent)
	guidance, err := library.GuidanceForObjective(objective, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("estimated guidance:")
	fmt.Print(guidance.Describe())

	// Step 2: run the three search variants the paper compares.
	variants := []struct {
		name string
		g    *core.Guidance
	}{
		{"baseline GA", nil},
		{"nautilus (weakly guided)", guidance.WithConfidence(0.4)},
		{"nautilus (strongly guided)", guidance},
	}
	fmt.Println("\nmaximize router frequency, averaged over 10 runs:")
	for _, v := range variants {
		var sumMHz float64
		var sumEvals int
		const runs = 10
		for seed := int64(0); seed < runs; seed++ {
			res, err := core.Search(context.Background(), core.SearchRequest{
				Space:     space,
				Objective: objective,
				Evaluate:  evaluate,
				Config:    ga.Config{Seed: seed, Generations: 80},
			}, core.WithGuidance(v.g))
			if err != nil {
				log.Fatal(err)
			}
			sumMHz += res.BestValue
			sumEvals += res.DistinctEvals
		}
		fmt.Printf("  %-28s %6.1f MHz using %3d synthesis jobs (mean)\n",
			v.name, sumMHz/runs, sumEvals/runs)
	}
}
