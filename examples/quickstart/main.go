// Quickstart: automatically tune an FFT IP's parameters to minimize LUT
// usage, first with the plain genetic algorithm and then with the IP
// author's hints - the minimal end-to-end Nautilus flow.
package main

import (
	"context"
	"fmt"
	"log"

	"nautilus/internal/core"
	"nautilus/internal/fft"
	"nautilus/internal/ga"
	"nautilus/internal/metrics"
	"nautilus/internal/param"
)

func main() {
	// The IP generator exposes its design space and an evaluator; each
	// evaluation stands in for a multi-minute synthesis job.
	space := fft.Space()
	evaluate := func(pt param.Point) (metrics.Metrics, error) {
		return fft.Evaluate(space, pt)
	}

	// The IP user states a goal.
	objective := metrics.MinimizeMetric(metrics.LUTs)
	cfg := ga.Config{Seed: 42} // paper defaults: population 10, 80 generations

	// 1. Baseline GA: no knowledge of the design space.
	req := core.SearchRequest{Space: space, Objective: objective, Evaluate: evaluate, Config: cfg}
	baseline, err := core.Search(context.Background(), req)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Nautilus: the same engine guided by the hints the IP author
	//    shipped with the generator.
	guidance, err := fft.ExpertHints().GuidanceForObjective(objective, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	guided, err := core.Search(context.Background(), req, core.WithGuidance(guidance))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("goal: minimize FFT LUT usage (1024-point transform)")
	fmt.Printf("baseline GA: %4.0f LUTs after %3d synthesis jobs\n",
		baseline.BestValue, baseline.DistinctEvals)
	fmt.Printf("nautilus:    %4.0f LUTs after %3d synthesis jobs\n",
		guided.BestValue, guided.DistinctEvals)
	fmt.Printf("best configuration: %s\n", space.Describe(guided.BestPoint))
}
