// noc_simulation characterizes NoC design points by *measured* performance:
// it runs the cycle-based wormhole simulator over several topologies,
// producing latency-throughput curves and saturation points, and then uses
// a simulation-derived metric (saturation throughput per mm^2) as a
// Nautilus optimization objective over the network design space - the
// "simulation tools" half of the paper's characterization flow in action.
package main

import (
	"context"
	"fmt"
	"log"

	"nautilus/internal/core"
	"nautilus/internal/ga"
	"nautilus/internal/metrics"
	"nautilus/internal/netsim"
	"nautilus/internal/noc"
	"nautilus/internal/param"
)

func main() {
	// Part 1: latency-throughput curves for three topology families.
	fmt.Println("latency-throughput curves (64 endpoints, 2 VCs, 4-flit buffers):")
	for _, kind := range []string{netsim.TopoRing, netsim.TopoMesh, netsim.TopoFatTree} {
		topo, err := netsim.Build(kind, 64)
		if err != nil {
			log.Fatal(err)
		}
		base := netsim.Config{
			Topology: topo,
			Router:   netsim.RouterConfig{VCs: 2, BufDepth: 4, PipelineLatency: 2},
			Seed:     1,
		}
		curve, err := netsim.Sweep(base, []float64{0.05, 0.15, 0.3, 0.5})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s", kind)
		for _, p := range curve {
			fmt.Printf("  load %.2f: %5.1f cyc/%.2f acc", p.Offered, p.AvgLatency, p.Throughput)
		}
		sat, err := netsim.SaturationThroughput(base, 3, 6)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  | saturation %.2f\n", sat)
	}

	// Part 2: optimize a simulation-derived composite objective over the
	// network space: saturation throughput per mm^2 of silicon.
	space := noc.NetworkSpace()
	evaluate := func(pt param.Point) (metrics.Metrics, error) {
		m, err := noc.NetworkEvaluate(space, pt)
		if err != nil {
			return nil, err
		}
		n := noc.DecodeNetwork(space, pt)
		sim, err := n.SimulatePerformance(7)
		if err != nil {
			return nil, err // unsimulatable configs are infeasible
		}
		m[noc.MetricSatThroughput] = sim[noc.MetricSatThroughput]
		m[noc.MetricZeroLoadLatency] = sim[noc.MetricZeroLoadLatency]
		return m, nil
	}
	objective := metrics.MaximizeDerived("sat_per_mm2",
		metrics.Ratio(noc.MetricSatThroughput, metrics.AreaMM2))

	// Constrain to designs with acceptable zero-load latency.
	constrained := objective.Constrained(metrics.AtMost(noc.MetricZeroLoadLatency, 60))

	fmt.Println("\noptimizing saturation-throughput-per-mm2 (latency <= 60 cycles):")
	res, err := core.Search(context.Background(), core.SearchRequest{
		Space:     space,
		Objective: constrained,
		Evaluate:  evaluate,
		Config:    ga.Config{Seed: 5, Generations: 12, PopulationSize: 8},
	})
	if err != nil {
		log.Fatal(err)
	}
	if res.BestPoint == nil {
		log.Fatal("no feasible network found")
	}
	m, err := evaluate(res.BestPoint)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  best: %s\n", space.Describe(res.BestPoint))
	fmt.Printf("  metrics: %s\n", m)
	fmt.Printf("  simulation+synthesis jobs: %d\n", res.DistinctEvals)
}
