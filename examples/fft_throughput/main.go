// fft_throughput reproduces the paper's Figure 7 scenario as an
// application: maximize a composite efficiency metric (throughput per LUT)
// over the FFT generator's design space using the expert hints shipped with
// the generator, and compare the result against the true optimum found by
// exhaustive search - which costs the full design space in synthesis jobs.
package main

import (
	"context"
	"fmt"
	"log"

	"nautilus/internal/core"
	"nautilus/internal/fft"
	"nautilus/internal/ga"
	"nautilus/internal/metrics"
	"nautilus/internal/param"
	"nautilus/internal/search"
)

func main() {
	space := fft.Space()
	evaluate := func(pt param.Point) (metrics.Metrics, error) {
		return fft.Evaluate(space, pt)
	}
	objective := metrics.ThroughputPerLUT()

	// Ground truth: exhaustive search (what Nautilus exists to avoid).
	exhaustive, err := search.Exhaustive(space, objective, evaluate)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exhaustive optimum: %.3f MSPS/LUT at %s (%d synthesis jobs)\n",
		exhaustive.BestValue, space.Describe(exhaustive.BestPoint), exhaustive.DistinctEvals)

	// Nautilus with the generator's expert hints for the composite metric.
	guidance, err := fft.ExpertHints().Guidance(metrics.Maximize,
		map[string]float64{"throughput_per_lut": 1}, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.Search(context.Background(), core.SearchRequest{
		Space:     space,
		Objective: objective,
		Evaluate:  evaluate,
		Config:    ga.Config{Seed: 7},
	}, core.WithGuidance(guidance))
	if err != nil {
		log.Fatal(err)
	}
	m, err := evaluate(res.BestPoint)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nautilus found:     %.3f MSPS/LUT at %s (%d synthesis jobs)\n",
		res.BestValue, space.Describe(res.BestPoint), res.DistinctEvals)
	fmt.Printf("  full metrics: %s\n", m)
	fmt.Printf("  quality: %.1f%% of the exhaustive optimum at %.2f%% of its cost\n",
		100*res.BestValue/exhaustive.BestValue,
		100*float64(res.DistinctEvals)/float64(exhaustive.DistinctEvals))

	// Show how the search converged.
	fmt.Println("\nconvergence (designs evaluated -> best MSPS/LUT):")
	for _, gp := range res.Trajectory {
		if gp.Generation%10 == 0 {
			fmt.Printf("  gen %2d: %4d evals  %.3f\n", gp.Generation, gp.DistinctEvals, gp.BestValue)
		}
	}
}
