// Benchmark harness: one benchmark per table/figure of the Nautilus
// paper's evaluation, plus the ablation studies from DESIGN.md. Each
// iteration regenerates the corresponding experiment at a reduced-but-
// representative scale (5 runs per GA variant instead of the paper's 40) so
// `go test -bench=.` completes in minutes; run cmd/experiments for the
// full paper-scale tables.
package nautilus

import (
	"testing"

	"nautilus/internal/experiments"
)

// benchCfg is the reduced scale used per benchmark iteration.
func benchCfg() experiments.Config {
	return experiments.Config{Runs: 5}
}

func runExperiment(b *testing.B, fn func(experiments.Config) ([]experiments.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tables, err := fn(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("experiment produced no tables")
		}
	}
}

// BenchmarkFig1RouterSpace characterizes the ~28k-point VC router space and
// summarizes its LUT/frequency landscape (paper Figure 1).
func BenchmarkFig1RouterSpace(b *testing.B) { b.ReportAllocs(); runExperiment(b, experiments.Fig1) }

// BenchmarkFig2NoCLandscape characterizes all 64-endpoint network
// configurations across eight topology families at 65nm (paper Figure 2).
func BenchmarkFig2NoCLandscape(b *testing.B) { b.ReportAllocs(); runExperiment(b, experiments.Fig2) }

// BenchmarkFig3BiasHints compares the baseline GA against Nautilus with one
// and two bias hints on FFT score-vs-generation (paper Figure 3).
func BenchmarkFig3BiasHints(b *testing.B) { b.ReportAllocs(); runExperiment(b, experiments.Fig3) }

// BenchmarkFig4NoCFrequency runs the NoC maximize-frequency query with
// non-expert hints at three guidance levels (paper Figure 4).
func BenchmarkFig4NoCFrequency(b *testing.B) { b.ReportAllocs(); runExperiment(b, experiments.Fig4) }

// BenchmarkFig5AreaDelay runs the NoC minimize-area-delay-product composite
// query (paper Figure 5).
func BenchmarkFig5AreaDelay(b *testing.B) { b.ReportAllocs(); runExperiment(b, experiments.Fig5) }

// BenchmarkFig6FFTLUTs runs the FFT minimize-LUTs query with expert hints,
// including the random-sampling comparison (paper Figure 6).
func BenchmarkFig6FFTLUTs(b *testing.B) { b.ReportAllocs(); runExperiment(b, experiments.Fig6) }

// BenchmarkFig7ThroughputPerLUT runs the FFT maximize-throughput-per-LUT
// composite query with expert hints (paper Figure 7).
func BenchmarkFig7ThroughputPerLUT(b *testing.B) {
	b.ReportAllocs()
	runExperiment(b, experiments.Fig7)
}

// BenchmarkHeadlineNumbers regenerates the Section 4.2 summary ratios.
func BenchmarkHeadlineNumbers(b *testing.B) { b.ReportAllocs(); runExperiment(b, experiments.Headline) }

// BenchmarkAblations regenerates the design-choice studies: confidence
// sweep, hint classes, importance decay, adversarial hints, and GA
// parameter sensitivity.
func BenchmarkAblations(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Ablations(experiments.Config{Runs: 3, Generations: 40})
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) != 5 {
			b.Fatalf("expected 5 ablation tables, got %d", len(tables))
		}
	}
}

// BenchmarkExtensionBaselines compares Nautilus against random sampling,
// hill climbing, and simulated annealing under equal cost accounting.
func BenchmarkExtensionBaselines(b *testing.B) {
	b.ReportAllocs()
	runExperiment(b, experiments.ExtensionBaselines)
}

// BenchmarkExtensionPareto extracts the FFT area-throughput Pareto front
// and measures how close single-query answers land to it.
func BenchmarkExtensionPareto(b *testing.B) {
	b.ReportAllocs()
	runExperiment(b, experiments.ExtensionPareto)
}

// BenchmarkExtensionSimVsAnalytical cross-validates the analytical
// bisection-bandwidth model against the cycle-based wormhole simulator.
func BenchmarkExtensionSimVsAnalytical(b *testing.B) {
	b.ReportAllocs()
	runExperiment(b, experiments.ExtensionSimVsAnalytical)
}

// BenchmarkExtensionThirdIP runs the generality study on the systolic GEMM
// generator.
func BenchmarkExtensionThirdIP(b *testing.B) {
	b.ReportAllocs()
	runExperiment(b, experiments.ExtensionThirdIP)
}
